#include "hypre/storage/snapshot.h"

#include <cstring>

#include "common/string_util.h"
#include "hypre/storage/format.h"
#include "common/json.h"

namespace hypre {
namespace storage {

namespace {

constexpr char kSnapshotMagic[8] = {'H', 'Y', 'S', 'N', 'A', 'P', '0', '1'};
constexpr int64_t kFormatVersion = 1;

std::string EncodeTableRows(const reldb::Table& table) {
  BufferWriter w;
  w.PutU64(table.num_rows());
  for (reldb::RowId id = 0; id < table.num_rows(); ++id) {
    w.PutU8(table.is_deleted(id) ? 1 : 0);
    for (const reldb::Value& v : table.row(id)) w.PutValue(v);
  }
  return w.TakeData();
}

std::string EncodeDictionary(const core::EngineSnapshotImage& image) {
  BufferWriter w;
  w.PutU64(image.keys.size());
  for (const auto& [value, live] : image.keys) {
    w.PutU8(live ? 1 : 0);
    w.PutValue(value);
  }
  w.PutU64(image.free_ids.size());
  for (uint32_t id : image.free_ids) w.PutU32(id);
  return w.TakeData();
}

std::string EncodeLeaf(const core::EngineSnapshotImage::Leaf& leaf) {
  BufferWriter w;
  w.PutString(leaf.predicate_sql);
  w.PutU64(leaf.words.size());
  for (uint64_t word : leaf.words) w.PutU64(word);
  return w.TakeData();
}

Json JsonStringArray(const std::vector<std::string>& items) {
  Json arr = Json::Array();
  for (const std::string& s : items) arr.Append(Json::Str(s));
  return arr;
}

Json EncodeMeta(const reldb::Database& db, uint64_t journal_sequence,
                const std::vector<SnapshotEngineState>& engines) {
  Json meta = Json::Object();
  meta.Set("format_version", Json::Int(kFormatVersion));
  meta.Set("journal_sequence",
           Json::Int(static_cast<int64_t>(journal_sequence)));

  Json tables = Json::Array();
  for (const std::string& name : db.TableNames()) {
    const reldb::Table* table = db.GetTable(name);
    Json t = Json::Object();
    t.Set("name", Json::Str(name));
    Json columns = Json::Array();
    for (const reldb::Column& col : table->schema().columns()) {
      Json c = Json::Object();
      c.Set("name", Json::Str(col.name));
      c.Set("type", Json::Int(static_cast<int64_t>(col.type)));
      columns.Append(std::move(c));
    }
    t.Set("columns", std::move(columns));
    t.Set("hash_indexes", JsonStringArray(table->HashIndexColumns()));
    t.Set("ordered_indexes", JsonStringArray(table->OrderedIndexColumns()));
    t.Set("num_rows", Json::Int(static_cast<int64_t>(table->num_rows())));
    tables.Append(std::move(t));
  }
  meta.Set("tables", std::move(tables));

  Json engine_list = Json::Array();
  for (const SnapshotEngineState& state : engines) {
    Json e = Json::Object();
    e.Set("base_sql", Json::Str(state.base_sql));
    e.Set("key_column", Json::Str(state.key_column));
    e.Set("universe_ready", Json::Int(state.image.universe_ready ? 1 : 0));
    e.Set("epoch", Json::Int(static_cast<int64_t>(state.image.epoch)));
    e.Set("journal_cursor",
          Json::Int(static_cast<int64_t>(state.image.journal_cursor)));
    e.Set("num_keys", Json::Int(static_cast<int64_t>(state.image.keys.size())));
    e.Set("num_leaves",
          Json::Int(static_cast<int64_t>(state.image.leaves.size())));
    engine_list.Append(std::move(e));
  }
  meta.Set("engines", std::move(engine_list));
  return meta;
}

}  // namespace

std::string EncodeSnapshot(const reldb::Database& db,
                           uint64_t journal_sequence,
                           const std::vector<SnapshotEngineState>& engines) {
  std::string blob(kSnapshotMagic, sizeof(kSnapshotMagic));
  AppendSection(kSectionMeta,
                EncodeMeta(db, journal_sequence, engines).Dump(), &blob);
  for (const std::string& name : db.TableNames()) {
    AppendSection(kSectionTableRows, EncodeTableRows(*db.GetTable(name)),
                  &blob);
  }
  for (const SnapshotEngineState& state : engines) {
    if (!state.image.universe_ready) continue;
    AppendSection(kSectionDictionary, EncodeDictionary(state.image), &blob);
    for (const auto& leaf : state.image.leaves) {
      AppendSection(kSectionLeaf, EncodeLeaf(leaf), &blob);
    }
  }
  AppendSection(kSectionEnd, "", &blob);
  return blob;
}

Status WriteSnapshotBlob(Env* env, const std::string& path,
                         const std::string& blob) {
  // Atomic publish: temp file, full sync, rename over the live name.
  std::string tmp = path + ".tmp";
  HYPRE_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> file,
                         env->NewWritableFile(tmp, /*truncate=*/true));
  HYPRE_RETURN_NOT_OK(file->Append(blob));
  HYPRE_RETURN_NOT_OK(file->Sync());
  HYPRE_RETURN_NOT_OK(file->Close());
  return env->RenameFile(tmp, path);
}

Status WriteSnapshot(Env* env, const std::string& path,
                     const reldb::Database& db, uint64_t journal_sequence,
                     const std::vector<SnapshotEngineState>& engines) {
  return WriteSnapshotBlob(env, path,
                           EncodeSnapshot(db, journal_sequence, engines));
}

namespace {

Status DecodeTableRows(const Section& section, const std::string& context,
                       size_t expected_rows, reldb::Table* table) {
  BufferReader r(section.payload, section.size, context);
  HYPRE_ASSIGN_OR_RETURN(uint64_t num_rows, r.ReadU64());
  if (num_rows != expected_rows) {
    return r.CorruptionError(StringFormat(
        "row count %llu disagrees with catalog (%zu)",
        (unsigned long long)num_rows, expected_rows));
  }
  size_t num_cols = table->schema().num_columns();
  table->Reserve(static_cast<size_t>(num_rows));
  for (uint64_t i = 0; i < num_rows; ++i) {
    HYPRE_ASSIGN_OR_RETURN(uint8_t deleted, r.ReadU8());
    if (deleted > 1) {
      return r.CorruptionError(
          StringFormat("bad tombstone flag %u", unsigned{deleted}));
    }
    reldb::Row row;
    row.reserve(num_cols);
    for (size_t c = 0; c < num_cols; ++c) {
      HYPRE_ASSIGN_OR_RETURN(reldb::Value v, r.ReadValue());
      row.push_back(std::move(v));
    }
    table->RestoreRow(std::move(row), deleted != 0);
  }
  if (!r.AtEnd()) {
    return r.CorruptionError("trailing bytes after table rows");
  }
  return Status::OK();
}

Status DecodeDictionary(const Section& section, const std::string& context,
                        size_t expected_keys,
                        core::EngineSnapshotImage* image) {
  BufferReader r(section.payload, section.size, context);
  HYPRE_ASSIGN_OR_RETURN(uint64_t num_keys, r.ReadU64());
  if (num_keys != expected_keys) {
    return r.CorruptionError(StringFormat(
        "key count %llu disagrees with catalog (%zu)",
        (unsigned long long)num_keys, expected_keys));
  }
  image->keys.reserve(num_keys);
  for (uint64_t i = 0; i < num_keys; ++i) {
    HYPRE_ASSIGN_OR_RETURN(uint8_t live, r.ReadU8());
    if (live > 1) {
      return r.CorruptionError(
          StringFormat("bad live flag %u", unsigned{live}));
    }
    HYPRE_ASSIGN_OR_RETURN(reldb::Value v, r.ReadValue());
    image->keys.emplace_back(std::move(v), live != 0);
  }
  HYPRE_ASSIGN_OR_RETURN(uint64_t num_free, r.ReadU64());
  if (num_free > num_keys) {
    return r.CorruptionError(StringFormat(
        "free list of %llu ids exceeds universe of %llu keys",
        (unsigned long long)num_free, (unsigned long long)num_keys));
  }
  image->free_ids.reserve(num_free);
  for (uint64_t i = 0; i < num_free; ++i) {
    HYPRE_ASSIGN_OR_RETURN(uint32_t id, r.ReadU32());
    image->free_ids.push_back(id);
  }
  if (!r.AtEnd()) {
    return r.CorruptionError("trailing bytes after dictionary");
  }
  return Status::OK();
}

Status DecodeLeaf(const Section& section, const std::string& context,
                  core::EngineSnapshotImage::Leaf* leaf) {
  BufferReader r(section.payload, section.size, context);
  HYPRE_ASSIGN_OR_RETURN(leaf->predicate_sql, r.ReadString());
  HYPRE_ASSIGN_OR_RETURN(uint64_t num_words, r.ReadU64());
  // Divide instead of multiplying: `num_words * 8` can wrap in uint64, and
  // a wrapped count that passed the guard would reach reserve() as a
  // multi-exabyte allocation (crash, not the contracted fail-closed error).
  if (num_words > r.remaining() / 8 || num_words * 8 != r.remaining()) {
    return r.CorruptionError(StringFormat(
        "leaf claims %llu bitmap words but %zu bytes follow",
        (unsigned long long)num_words, r.remaining()));
  }
  leaf->words.reserve(num_words);
  for (uint64_t i = 0; i < num_words; ++i) {
    HYPRE_ASSIGN_OR_RETURN(uint64_t word, r.ReadU64());
    leaf->words.push_back(word);
  }
  return Status::OK();
}

Result<Section> NextSection(const std::string& data, uint64_t* offset,
                            uint32_t expected_type,
                            const std::string& context) {
  if (*offset >= data.size()) {
    return Status::Internal(context +
                            ": file ends before its terminator section "
                            "(truncated snapshot)");
  }
  HYPRE_ASSIGN_OR_RETURN(Section section,
                         ReadSection(data.data(), data.size(), offset,
                                     context));
  if (section.type != expected_type) {
    return Status::Internal(StringFormat(
        "%s: expected section type %u at byte %llu, found %u",
        context.c_str(), expected_type,
        (unsigned long long)section.file_offset, section.type));
  }
  return section;
}

}  // namespace

Result<SnapshotContents> ReadSnapshot(Env* env, const std::string& path) {
  std::string context = "snapshot '" + path + "'";
  HYPRE_ASSIGN_OR_RETURN(std::string data, env->ReadFileToString(path));
  if (data.size() < sizeof(kSnapshotMagic) ||
      std::memcmp(data.data(), kSnapshotMagic, sizeof(kSnapshotMagic)) != 0) {
    return Status::Internal(
        context + ": bad magic (not a snapshot file, or corrupted)");
  }
  uint64_t offset = sizeof(kSnapshotMagic);

  // Catalog metadata.
  HYPRE_ASSIGN_OR_RETURN(Section meta_section,
                         NextSection(data, &offset, kSectionMeta, context));
  HYPRE_ASSIGN_OR_RETURN(
      Json meta, Json::Parse(std::string(meta_section.payload,
                                         meta_section.size),
                             context + " meta"));
  HYPRE_ASSIGN_OR_RETURN(int64_t version,
                         meta.GetInt("format_version", context));
  if (version != kFormatVersion) {
    return Status::Internal(StringFormat(
        "%s: format version %lld not supported (this build reads %lld)",
        context.c_str(), (long long)version, (long long)kFormatVersion));
  }
  SnapshotContents out;
  HYPRE_ASSIGN_OR_RETURN(int64_t seq,
                         meta.GetInt("journal_sequence", context));
  out.journal_sequence = static_cast<uint64_t>(seq);
  out.db = std::make_unique<reldb::Database>();

  // Tables: schemas from the catalog, rows from the binary sections.
  HYPRE_ASSIGN_OR_RETURN(const Json* tables, meta.GetArray("tables", context));
  struct PendingIndexes {
    reldb::Table* table;
    std::vector<std::string> hash_columns;
    std::vector<std::string> ordered_columns;
  };
  std::vector<PendingIndexes> pending;
  for (size_t i = 0; i < tables->size(); ++i) {
    const Json& t = tables->at(i);
    std::string tctx = StringFormat("%s table[%zu]", context.c_str(), i);
    HYPRE_ASSIGN_OR_RETURN(std::string name, t.GetString("name", tctx));
    HYPRE_ASSIGN_OR_RETURN(const Json* columns, t.GetArray("columns", tctx));
    std::vector<reldb::Column> cols;
    cols.reserve(columns->size());
    for (size_t c = 0; c < columns->size(); ++c) {
      HYPRE_ASSIGN_OR_RETURN(std::string col_name,
                             columns->at(c).GetString("name", tctx));
      HYPRE_ASSIGN_OR_RETURN(int64_t type, columns->at(c).GetInt("type", tctx));
      if (type < 0 || type > static_cast<int64_t>(reldb::ValueType::kString)) {
        return Status::Internal(StringFormat(
            "%s: column '%s' has unknown type tag %lld", tctx.c_str(),
            col_name.c_str(), (long long)type));
      }
      cols.push_back({std::move(col_name), static_cast<reldb::ValueType>(type)});
    }
    HYPRE_ASSIGN_OR_RETURN(int64_t num_rows, t.GetInt("num_rows", tctx));
    HYPRE_ASSIGN_OR_RETURN(reldb::Table * table,
                           out.db->CreateTable(name, reldb::Schema(cols)));
    HYPRE_ASSIGN_OR_RETURN(
        Section rows_section,
        NextSection(data, &offset, kSectionTableRows, context));
    HYPRE_RETURN_NOT_OK(DecodeTableRows(rows_section, tctx + " rows",
                                        static_cast<size_t>(num_rows), table));

    PendingIndexes idx;
    idx.table = table;
    HYPRE_ASSIGN_OR_RETURN(const Json* hashes,
                           t.GetArray("hash_indexes", tctx));
    for (size_t h = 0; h < hashes->size(); ++h) {
      idx.hash_columns.push_back(hashes->at(h).AsString());
    }
    HYPRE_ASSIGN_OR_RETURN(const Json* ordered,
                           t.GetArray("ordered_indexes", tctx));
    for (size_t o = 0; o < ordered->size(); ++o) {
      idx.ordered_columns.push_back(ordered->at(o).AsString());
    }
    pending.push_back(std::move(idx));
  }
  // Indexes after all rows are restored (RestoreRow skips index upkeep) —
  // and lazily: a declared index materializes on its first query touch, so
  // a warm restart whose engines probe restored bitmaps never pays for
  // index builds it does not use.
  for (PendingIndexes& idx : pending) {
    for (const std::string& col : idx.hash_columns) {
      HYPRE_RETURN_NOT_OK(idx.table->DeclareHashIndex(col));
    }
    for (const std::string& col : idx.ordered_columns) {
      HYPRE_RETURN_NOT_OK(idx.table->DeclareOrderedIndex(col));
    }
  }
  // The restored journal starts numbering where the snapshot left off, so
  // WAL replay reproduces the original sequence numbers.
  out.db->mutable_journal()->SetStart(out.journal_sequence);

  // Engines.
  HYPRE_ASSIGN_OR_RETURN(const Json* engine_list,
                         meta.GetArray("engines", context));
  for (size_t i = 0; i < engine_list->size(); ++i) {
    const Json& e = engine_list->at(i);
    std::string ectx = StringFormat("%s engine[%zu]", context.c_str(), i);
    SnapshotEngineState state;
    HYPRE_ASSIGN_OR_RETURN(state.base_sql, e.GetString("base_sql", ectx));
    HYPRE_ASSIGN_OR_RETURN(state.key_column, e.GetString("key_column", ectx));
    HYPRE_ASSIGN_OR_RETURN(int64_t ready, e.GetInt("universe_ready", ectx));
    state.image.universe_ready = ready != 0;
    HYPRE_ASSIGN_OR_RETURN(int64_t epoch, e.GetInt("epoch", ectx));
    state.image.epoch = static_cast<uint64_t>(epoch);
    HYPRE_ASSIGN_OR_RETURN(int64_t cursor, e.GetInt("journal_cursor", ectx));
    state.image.journal_cursor = static_cast<uint64_t>(cursor);
    if (state.image.universe_ready) {
      HYPRE_ASSIGN_OR_RETURN(int64_t num_keys, e.GetInt("num_keys", ectx));
      HYPRE_ASSIGN_OR_RETURN(int64_t num_leaves, e.GetInt("num_leaves", ectx));
      HYPRE_ASSIGN_OR_RETURN(
          Section dict_section,
          NextSection(data, &offset, kSectionDictionary, context));
      HYPRE_RETURN_NOT_OK(DecodeDictionary(dict_section, ectx + " dictionary",
                                           static_cast<size_t>(num_keys),
                                           &state.image));
      for (int64_t l = 0; l < num_leaves; ++l) {
        HYPRE_ASSIGN_OR_RETURN(
            Section leaf_section,
            NextSection(data, &offset, kSectionLeaf, context));
        core::EngineSnapshotImage::Leaf leaf;
        HYPRE_RETURN_NOT_OK(
            DecodeLeaf(leaf_section,
                       StringFormat("%s leaf[%lld]", ectx.c_str(),
                                    (long long)l),
                       &leaf));
        state.image.leaves.push_back(std::move(leaf));
      }
    }
    out.engines.push_back(std::move(state));
  }

  // Terminator: its presence proves the file was written to the end.
  HYPRE_ASSIGN_OR_RETURN(Section end_section,
                         NextSection(data, &offset, kSectionEnd, context));
  (void)end_section;
  if (offset != data.size()) {
    return Status::Internal(StringFormat(
        "%s: %llu trailing bytes after the terminator section",
        context.c_str(), (unsigned long long)(data.size() - offset)));
  }
  return out;
}

}  // namespace storage
}  // namespace hypre
