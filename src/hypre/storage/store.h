// EngineStore: checkpoint/journal/recovery orchestration over one directory.
//
// Directory layout:
//
//   <dir>/snapshot.hypre   the current snapshot (atomic rename publishes it)
//   <dir>/wal.log          the write-ahead journal log paired with it
//   <dir>/*.tmp            in-flight writes; never read, removed on open
//
// The checkpoint sequence is ordered for crash safety — at every kill point
// the directory recovers to a committed state or recovery fails closed:
//
//   1. (caller) Refresh every engine so all journal cursors == sequence()
//   2. CommitJournal: spill the journal tail to the WAL, fsync
//   3. write snapshot.tmp covering sequence S, fsync, rename over
//      snapshot.hypre                       <- the commit point
//   4. rotate the WAL: write wal.tmp with base S, fsync, rename over
//      wal.log (the old WAL's records are all < S, baked into the snapshot)
//   5. MutationJournal::TruncateTo(S) — in-memory segments below S die
//
// A crash between 3 and 4 leaves a NEW snapshot with the OLD WAL; replay
// skips records below the snapshot's sequence, so that pairing is valid.
// Recovery itself (Recover) loads the snapshot, replays the WAL tail
// through the normal Table::Append/Delete path (re-journaling, so replayed
// records keep their sequence numbers), verifies row ids line up, then
// re-attaches the writer to the surviving WAL (cutting off only a torn
// tail) before handing the database back. Recovery never rewrites the WAL:
// its committed records are the durable truth, and rotating a fresh log
// over them before they were re-spilled would turn a crash during recovery
// into silent loss of acknowledged mutations. A fresh WAL is created only
// when none exists (the crash window between steps 3 and 4 of the FIRST
// checkpoint), where there is nothing to destroy.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "hypre/storage/env.h"
#include "hypre/storage/snapshot.h"
#include "hypre/storage/wal.h"

namespace hypre {
namespace storage {

/// \brief Knobs for a storage-attached session.
struct StorageOptions {
  /// File-system seam; null uses Env::Default(). Tests inject a
  /// FaultInjectionEnv here.
  Env* env = nullptr;
  /// When > 0, api::Session checkpoints automatically once this many
  /// journal entries accumulate past the last snapshot. 0 disables the
  /// policy (explicit SaveSnapshot()/CommitJournal() only).
  uint64_t auto_checkpoint_mutations = 0;
};

class EngineStore {
 public:
  /// \brief Binds a store to `dir` (created if missing); removes stale
  /// *.tmp files. Does not read or write snapshot/WAL — follow with
  /// InitialCheckpoint (fresh database) or Recover (existing directory).
  static Result<std::unique_ptr<EngineStore>> Open(const std::string& dir,
                                                   const StorageOptions& options);

  std::string snapshot_path() const { return dir_ + "/snapshot.hypre"; }
  std::string wal_path() const { return dir_ + "/wal.log"; }
  bool HasSnapshot() const { return env_->FileExists(snapshot_path()); }

  /// \brief First checkpoint for a database this process already holds in
  /// memory: snapshot + fresh WAL. The caller must have refreshed every
  /// captured engine (cursors == journal sequence).
  Status InitialCheckpoint(reldb::Database* db,
                           const std::vector<SnapshotEngineState>& engines);

  /// \brief Loads the snapshot, replays the WAL tail into it, and attaches
  /// the store's writer to the surviving WAL (truncating only a torn
  /// tail; the committed records are never rewritten). Fails closed on any
  /// corruption: no partial state, and the directory is left untouched for
  /// forensics.
  Result<SnapshotContents> Recover();

  /// \brief Spills journal entries [wal_sequence(), db.journal().sequence())
  /// to the WAL and fsyncs — the group-commit point making those mutations
  /// durable. Row payloads are read from the tables (tombstone retention
  /// keeps deleted rows addressable).
  Status CommitJournal(const reldb::Database& db);

  /// \brief Steps 2-5 of the checkpoint sequence above.
  Status WriteCheckpoint(reldb::Database* db,
                         const std::vector<SnapshotEngineState>& engines);

  // --- Background-checkpoint split ----------------------------------------
  //
  // api::Session's background checkpointer decomposes WriteCheckpoint so
  // that only pure file I/O leaves the request thread:
  //
  //   request thread:   CommitJournal (durability point), EncodeSnapshot
  //   worker thread:    PublishSnapshotBlob (tmp + fsync + rename)
  //   request thread:   NoteSnapshotPublished, RotateWalRespill, TruncateTo
  //
  // The WAL steps stay on the request thread deliberately: rotating the log
  // concurrently with new appends would re-create the recovery data-loss
  // hazard documented above (a fresh WAL renamed over committed records
  // before they are re-spilled).

  /// \brief Publishes an encoded snapshot blob (see EncodeSnapshot) under
  /// this store's snapshot name. Pure file I/O — safe off-thread; does NOT
  /// advance snapshot_sequence() (the owning thread does, via
  /// NoteSnapshotPublished).
  Status PublishSnapshotBlob(const std::string& blob);

  /// \brief Records that a snapshot covering `seq` is now the live file.
  void NoteSnapshotPublished(uint64_t seq) { snapshot_seq_ = seq; }

  /// \brief Rotates the WAL to base snapshot_sequence(), RE-SPILLING every
  /// journal entry at or past it into the fresh log before the rename —
  /// committed records that postdate the snapshot survive the rotation.
  /// Leaves wal_sequence() == db.journal().sequence(); the caller may then
  /// TruncateTo(snapshot_sequence()).
  Status RotateWalRespill(const reldb::Database& db);

  /// \brief Journal sequence covered by the current snapshot.
  uint64_t snapshot_sequence() const { return snapshot_seq_; }
  /// \brief Next journal sequence the WAL has not spilled yet.
  uint64_t wal_sequence() const { return wal_seq_; }

  const StorageOptions& options() const { return options_; }
  Env* env() const { return env_; }
  const std::string& dir() const { return dir_; }

 private:
  EngineStore(std::string dir, StorageOptions options, Env* env)
      : dir_(std::move(dir)), options_(options), env_(env) {}

  /// Spills journal entries [wal_seq_, journal.sequence()) without syncing.
  Status SpillJournalTail(const reldb::Database& db);
  /// Writes a fresh WAL at `base` via temp + rename, replacing writer_.
  Status RotateWal(uint64_t base);

  std::string dir_;
  StorageOptions options_;
  Env* env_;
  std::unique_ptr<WalWriter> writer_;
  uint64_t snapshot_seq_ = 0;
  uint64_t wal_seq_ = 0;
};

}  // namespace storage
}  // namespace hypre
