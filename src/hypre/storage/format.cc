#include "hypre/storage/format.h"

#include <bit>
#include <cstring>

#include "common/string_util.h"

namespace hypre {
namespace storage {

namespace {

// Lazily-built slicing-by-8 tables for the reflected IEEE polynomial
// 0xEDB88320. tables[0] is the classic byte-at-a-time table; tables[t]
// advances a byte through t additional zero bytes, letting the hot loop
// fold 8 input bytes per iteration. Checksums cover every byte of every
// snapshot section and WAL record, so this runs over the whole file on
// both save and recover.
using Crc32TableSet = uint32_t[8][256];

const Crc32TableSet& Crc32Tables() {
  static Crc32TableSet tables;
  static bool built = [] {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : (c >> 1);
      }
      tables[0][i] = c;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = tables[0][i];
      for (int t = 1; t < 8; ++t) {
        c = tables[0][c & 0xFF] ^ (c >> 8);
        tables[t][i] = c;
      }
    }
    return true;
  }();
  (void)built;
  return tables;
}

}  // namespace

uint32_t Crc32(const void* data, size_t n) {
  const Crc32TableSet& t = Crc32Tables();
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint32_t crc = 0xFFFFFFFFu;
  // The 8-byte fold reads two u32s in native order; the formulation below
  // is only correct little-endian, which every supported target is.
  if constexpr (std::endian::native == std::endian::little) {
    while (n >= 8) {
      uint32_t lo;
      uint32_t hi;
      std::memcpy(&lo, p, 4);
      std::memcpy(&hi, p + 4, 4);
      lo ^= crc;
      crc = t[7][lo & 0xFF] ^ t[6][(lo >> 8) & 0xFF] ^
            t[5][(lo >> 16) & 0xFF] ^ t[4][lo >> 24] ^ t[3][hi & 0xFF] ^
            t[2][(hi >> 8) & 0xFF] ^ t[1][(hi >> 16) & 0xFF] ^ t[0][hi >> 24];
      p += 8;
      n -= 8;
    }
  }
  for (size_t i = 0; i < n; ++i) {
    crc = t[0][(crc ^ p[i]) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

// --- BufferWriter ------------------------------------------------------------

void BufferWriter::PutU16(uint16_t v) {
  PutU8(static_cast<uint8_t>(v));
  PutU8(static_cast<uint8_t>(v >> 8));
}

void BufferWriter::PutU32(uint32_t v) {
  PutU16(static_cast<uint16_t>(v));
  PutU16(static_cast<uint16_t>(v >> 16));
}

void BufferWriter::PutU64(uint64_t v) {
  PutU32(static_cast<uint32_t>(v));
  PutU32(static_cast<uint32_t>(v >> 32));
}

void BufferWriter::PutString(const std::string& s) {
  PutU32(static_cast<uint32_t>(s.size()));
  buf_.append(s);
}

void BufferWriter::PutValue(const reldb::Value& v) {
  using reldb::ValueType;
  PutU8(static_cast<uint8_t>(v.type()));
  switch (v.type()) {
    case ValueType::kNull:
      break;
    case ValueType::kInt64:
      PutU64(static_cast<uint64_t>(v.AsInt()));
      break;
    case ValueType::kDouble: {
      double d = v.AsDouble();
      uint64_t bits;
      std::memcpy(&bits, &d, sizeof(bits));
      PutU64(bits);
      break;
    }
    case ValueType::kString:
      PutString(v.AsString());
      break;
  }
}

// --- BufferReader ------------------------------------------------------------

Status BufferReader::Need(size_t n) const {
  if (size_ - offset_ < n) {
    return Status::Internal(StringFormat(
        "%s: truncated at byte %zu (need %zu more bytes, have %zu)",
        context_.c_str(), offset_, n, size_ - offset_));
  }
  return Status::OK();
}

Status BufferReader::CorruptionError(const std::string& what) const {
  return Status::Internal(
      StringFormat("%s: %s at byte %zu", context_.c_str(), what.c_str(),
                   offset_));
}

Result<uint8_t> BufferReader::ReadU8() {
  HYPRE_RETURN_NOT_OK(Need(1));
  return static_cast<uint8_t>(data_[offset_++]);
}

Result<uint16_t> BufferReader::ReadU16() {
  HYPRE_RETURN_NOT_OK(Need(2));
  const uint8_t* p = reinterpret_cast<const uint8_t*>(data_ + offset_);
  offset_ += 2;
  return static_cast<uint16_t>(p[0] | (uint16_t{p[1]} << 8));
}

Result<uint32_t> BufferReader::ReadU32() {
  HYPRE_RETURN_NOT_OK(Need(4));
  const uint8_t* p = reinterpret_cast<const uint8_t*>(data_ + offset_);
  offset_ += 4;
  return uint32_t{p[0]} | (uint32_t{p[1]} << 8) | (uint32_t{p[2]} << 16) |
         (uint32_t{p[3]} << 24);
}

Result<uint64_t> BufferReader::ReadU64() {
  HYPRE_ASSIGN_OR_RETURN(uint32_t lo, ReadU32());
  HYPRE_ASSIGN_OR_RETURN(uint32_t hi, ReadU32());
  return uint64_t{lo} | (uint64_t{hi} << 32);
}

Result<std::string> BufferReader::ReadString() {
  HYPRE_ASSIGN_OR_RETURN(uint32_t len, ReadU32());
  HYPRE_RETURN_NOT_OK(Need(len));
  std::string out(data_ + offset_, len);
  offset_ += len;
  return out;
}

Status BufferReader::ReadRaw(void* out, size_t n) {
  HYPRE_RETURN_NOT_OK(Need(n));
  std::memcpy(out, data_ + offset_, n);
  offset_ += n;
  return Status::OK();
}

Result<reldb::Value> BufferReader::ReadValue() {
  using reldb::Value;
  using reldb::ValueType;
  HYPRE_ASSIGN_OR_RETURN(uint8_t tag, ReadU8());
  switch (static_cast<ValueType>(tag)) {
    case ValueType::kNull:
      return Value::Null();
    case ValueType::kInt64: {
      HYPRE_ASSIGN_OR_RETURN(uint64_t bits, ReadU64());
      return Value::Int(static_cast<int64_t>(bits));
    }
    case ValueType::kDouble: {
      HYPRE_ASSIGN_OR_RETURN(uint64_t bits, ReadU64());
      double d;
      std::memcpy(&d, &bits, sizeof(d));
      return Value::Real(d);
    }
    case ValueType::kString: {
      HYPRE_ASSIGN_OR_RETURN(std::string s, ReadString());
      return Value::Str(std::move(s));
    }
  }
  return CorruptionError(
      StringFormat("unknown value type tag %u", unsigned{tag}));
}

// --- Section framing ---------------------------------------------------------

namespace {
constexpr size_t kSectionHeaderSize = 4 + 8 + 4;  // type + len + crc
}  // namespace

void AppendSection(uint32_t type, const std::string& payload,
                   std::string* out) {
  BufferWriter header;
  header.PutU32(type);
  header.PutU64(payload.size());
  header.PutU32(Crc32(payload));
  out->append(header.data());
  out->append(payload);
}

Result<Section> ReadSection(const char* file, size_t file_size,
                            uint64_t* offset, const std::string& context) {
  BufferReader header(file + *offset, file_size - *offset,
                      StringFormat("%s (section header at byte %llu)",
                                   context.c_str(),
                                   (unsigned long long)*offset));
  Section section;
  section.file_offset = *offset;
  HYPRE_ASSIGN_OR_RETURN(section.type, header.ReadU32());
  HYPRE_ASSIGN_OR_RETURN(uint64_t len, header.ReadU64());
  HYPRE_ASSIGN_OR_RETURN(uint32_t expected_crc, header.ReadU32());
  uint64_t payload_off = *offset + kSectionHeaderSize;
  if (len > file_size - payload_off) {
    return Status::Internal(StringFormat(
        "%s: section at byte %llu claims %llu payload bytes but only %llu "
        "remain in the file",
        context.c_str(), (unsigned long long)section.file_offset,
        (unsigned long long)len,
        (unsigned long long)(file_size - payload_off)));
  }
  section.payload = file + payload_off;
  section.size = static_cast<size_t>(len);
  uint32_t actual_crc = Crc32(section.payload, section.size);
  if (actual_crc != expected_crc) {
    return Status::Internal(StringFormat(
        "%s: checksum mismatch in section type %u at byte %llu (stored "
        "%08x, computed %08x)",
        context.c_str(), section.type,
        (unsigned long long)section.file_offset, expected_crc, actual_crc));
  }
  *offset = payload_off + len;
  return section;
}

}  // namespace storage
}  // namespace hypre
