// Binary on-disk format primitives for the durable storage layer.
//
// Both durable artifacts — the engine snapshot and the write-ahead journal
// log — are built from the same vocabulary:
//
//  * Little-endian fixed-width integers (u8/u16/u32/u64) and length-prefixed
//    strings, written through BufferWriter and decoded through BufferReader.
//    Every reader error names the byte offset it failed at (and the file
//    path once the caller adds it), so corruption reports are actionable.
//  * reldb::Value codec: one type tag byte + the payload (int64 and the
//    IEEE-754 bit pattern of doubles as fixed64, strings length-prefixed,
//    NULL payload-free).
//  * CRC32 (IEEE, same polynomial as zlib) over every section / record
//    payload. A checksum mismatch is the reader's signal to fail closed.
//  * Section framing: [u32 type][u64 payload_len][u32 crc32][payload].
//    Files end with an explicit kSectionEnd marker so silent truncation at
//    a section boundary is detected, not misread as a short-but-valid file.
#pragma once

#include <cstdint>
#include <string>

#include "common/status.h"
#include "reldb/value.h"

namespace hypre {
namespace storage {

/// \brief CRC32 (IEEE 802.3 polynomial, zlib-compatible) of `data`.
uint32_t Crc32(const void* data, size_t n);
inline uint32_t Crc32(const std::string& data) {
  return Crc32(data.data(), data.size());
}

/// \brief Appends little-endian primitives to a growing byte buffer.
class BufferWriter {
 public:
  void PutU8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void PutU16(uint16_t v);
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  /// \brief u32 length prefix + raw bytes.
  void PutString(const std::string& s);
  void PutRaw(const void* data, size_t n) {
    buf_.append(static_cast<const char*>(data), n);
  }
  void PutValue(const reldb::Value& v);

  const std::string& data() const { return buf_; }
  std::string TakeData() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }

 private:
  std::string buf_;
};

/// \brief Bounds-checked little-endian decoder over a byte range. Errors
/// carry `context` (typically the file path plus section name) and the byte
/// offset within that range.
class BufferReader {
 public:
  BufferReader(const void* data, size_t n, std::string context)
      : data_(static_cast<const char*>(data)),
        size_(n),
        context_(std::move(context)) {}
  BufferReader(const std::string& data, std::string context)
      : BufferReader(data.data(), data.size(), std::move(context)) {}

  Result<uint8_t> ReadU8();
  Result<uint16_t> ReadU16();
  Result<uint32_t> ReadU32();
  Result<uint64_t> ReadU64();
  Result<std::string> ReadString();
  /// \brief Copies `n` raw bytes into `out`.
  Status ReadRaw(void* out, size_t n);
  Result<reldb::Value> ReadValue();

  size_t offset() const { return offset_; }
  size_t remaining() const { return size_ - offset_; }
  bool AtEnd() const { return offset_ == size_; }
  const std::string& context() const { return context_; }

  /// \brief The standard "fail closed" error for this reader's position.
  Status CorruptionError(const std::string& what) const;

 private:
  Status Need(size_t n) const;

  const char* data_;
  size_t size_;
  size_t offset_ = 0;
  std::string context_;
};

// --- Section framing --------------------------------------------------------

/// \brief Section type tags shared by the snapshot format.
enum SectionType : uint32_t {
  kSectionMeta = 1,       // JSON catalog + engine metadata
  kSectionTableRows = 2,  // one per table: physical rows + tombstone flags
  kSectionDictionary = 3, // one per engine: interned keys + live mask
  kSectionLeaf = 4,       // one per cached leaf: predicate SQL + bitmap
  kSectionEnd = 0xE0F0,   // terminator; absence means the file was cut
};

/// \brief Appends one framed section ([type][len][crc][payload]) to `out`.
void AppendSection(uint32_t type, const std::string& payload,
                   std::string* out);

/// \brief One decoded section (payload verified against its checksum).
struct Section {
  uint32_t type = 0;
  const char* payload = nullptr;  // points into the caller's buffer
  size_t size = 0;
  uint64_t file_offset = 0;  // of the section header, for error context
};

/// \brief Reads the section at reader position `*offset` of `file` (size
/// `file_size`), verifies its checksum, and advances `*offset`. The caller
/// loops until it sees kSectionEnd; running out of bytes first is a
/// truncation error.
Result<Section> ReadSection(const char* file, size_t file_size,
                            uint64_t* offset, const std::string& context);

}  // namespace storage
}  // namespace hypre
