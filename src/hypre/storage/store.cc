#include "hypre/storage/store.h"

#include <chrono>

#include "common/string_util.h"
#include "hypre/telemetry/registry.h"
#include "hypre/telemetry/trace.h"

namespace hypre {
namespace storage {

namespace {

#if HYPRE_TELEMETRY_ENABLED
/// Checkpoint accounting shared by the synchronous and background paths.
void RecordCheckpoint(uint64_t duration_ms, size_t snapshot_bytes) {
  telemetry::MetricsRegistry& registry = telemetry::MetricsRegistry::Global();
  registry
      .GetCounter("hypre_storage_checkpoints_total", "storage",
                  "Checkpoints published (snapshot + WAL rotation)")
      ->Increment();
  registry
      .GetHistogram("hypre_storage_checkpoint_duration_ms", "storage",
                    "Milliseconds per checkpoint (spill through rotation)")
      ->Record(duration_ms);
  registry
      .GetCounter("hypre_storage_snapshot_bytes_total", "storage",
                  "Encoded snapshot bytes written")
      ->Add(snapshot_bytes);
}
#endif

}  // namespace

Result<std::unique_ptr<EngineStore>> EngineStore::Open(
    const std::string& dir, const StorageOptions& options) {
  Env* env = options.env != nullptr ? options.env : Env::Default();
  HYPRE_RETURN_NOT_OK(env->CreateDirIfMissing(dir));
  std::unique_ptr<EngineStore> store(new EngineStore(dir, options, env));
  // In-flight temp files from a previous crashed run are dead weight; the
  // live names are the only durable truth.
  HYPRE_RETURN_NOT_OK(env->RemoveFile(store->snapshot_path() + ".tmp"));
  HYPRE_RETURN_NOT_OK(env->RemoveFile(store->dir_ + "/wal.tmp"));
  return store;
}

Status EngineStore::RotateWal(uint64_t base) {
  writer_.reset();
  std::string tmp = dir_ + "/wal.tmp";
  HYPRE_ASSIGN_OR_RETURN(writer_, WalWriter::Create(env_, tmp, base));
  // The open handle follows the inode through the rename, so appends after
  // this land in the live file.
  HYPRE_RETURN_NOT_OK(env_->RenameFile(tmp, wal_path()));
  wal_seq_ = base;
  return Status::OK();
}

Status EngineStore::InitialCheckpoint(
    reldb::Database* db, const std::vector<SnapshotEngineState>& engines) {
  uint64_t seq = db->journal().sequence();
  HYPRE_RETURN_NOT_OK(
      WriteSnapshot(env_, snapshot_path(), *db, seq, engines));
  snapshot_seq_ = seq;
  HYPRE_RETURN_NOT_OK(RotateWal(seq));
  db->mutable_journal()->TruncateTo(seq);
  return Status::OK();
}

Status EngineStore::SpillJournalTail(const reldb::Database& db) {
  if (writer_ == nullptr) {
    return Status::Internal("storage dir '" + dir_ +
                            "' has no write-ahead log attached (checkpoint "
                            "or recover first)");
  }
  const reldb::MutationJournal& journal = db.journal();
  uint64_t end = journal.sequence();
  for (uint64_t seq = wal_seq_; seq < end; ++seq) {
    const reldb::Mutation& m = journal.entry(seq);
    const reldb::Table* table = db.GetTable(m.table);
    if (table == nullptr) {
      return Status::Internal("journal names unknown table '" + m.table +
                              "'");
    }
    // Appended payloads are read back from the table; tombstone retention
    // guarantees they are still addressable even if the row died since.
    const reldb::Row* row =
        m.kind == reldb::Mutation::Kind::kAppend ? &table->row(m.row)
                                                 : nullptr;
    HYPRE_RETURN_NOT_OK(writer_->AppendRecord(
        EncodeWalRecord(seq, m.kind, m.table, m.row, row)));
  }
  wal_seq_ = end;
  return Status::OK();
}

Status EngineStore::CommitJournal(const reldb::Database& db) {
  telemetry::TraceSpan span("storage", "wal_commit");
  HYPRE_RETURN_NOT_OK(SpillJournalTail(db));
  return writer_->Sync();
}

Status EngineStore::WriteCheckpoint(
    reldb::Database* db, const std::vector<SnapshotEngineState>& engines) {
  telemetry::TraceSpan span("storage", "checkpoint");
#if HYPRE_TELEMETRY_ENABLED
  auto start = std::chrono::steady_clock::now();
#endif
  // Spill first so the WAL alone carries everything up to the snapshot —
  // a crash during the snapshot write recovers from old snapshot + WAL.
  HYPRE_RETURN_NOT_OK(CommitJournal(*db));
  uint64_t seq = db->journal().sequence();
  std::string blob = EncodeSnapshot(*db, seq, engines);
  size_t snapshot_bytes = blob.size();
  HYPRE_RETURN_NOT_OK(WriteSnapshotBlob(env_, snapshot_path(), blob));
  snapshot_seq_ = seq;
  HYPRE_RETURN_NOT_OK(RotateWal(seq));
  // Every engine's cursor is at `seq` (the caller refreshed them before
  // capturing images), and the WAL below `seq` is gone — the in-memory
  // prefix has no remaining consumer.
  db->mutable_journal()->TruncateTo(seq);
  HYPRE_TELEMETRY_STMT(RecordCheckpoint(
      uint64_t(std::chrono::duration_cast<std::chrono::milliseconds>(
                   std::chrono::steady_clock::now() - start)
                   .count()),
      snapshot_bytes));
  (void)snapshot_bytes;
  return Status::OK();
}

Status EngineStore::PublishSnapshotBlob(const std::string& blob) {
  telemetry::TraceSpan span("storage", "snapshot_publish");
  return WriteSnapshotBlob(env_, snapshot_path(), blob);
}

Status EngineStore::RotateWalRespill(const reldb::Database& db) {
  telemetry::TraceSpan span("storage", "wal_rotate_respill");
  writer_.reset();
  std::string tmp = dir_ + "/wal.tmp";
  HYPRE_ASSIGN_OR_RETURN(writer_,
                         WalWriter::Create(env_, tmp, snapshot_seq_));
  wal_seq_ = snapshot_seq_;
  // Every committed record at or past the snapshot goes into the fresh log
  // BEFORE it replaces wal.log — the old WAL stays the durable truth until
  // its successor carries the full tail.
  HYPRE_RETURN_NOT_OK(SpillJournalTail(db));
  HYPRE_RETURN_NOT_OK(writer_->Sync());
  return env_->RenameFile(tmp, wal_path());
}

Result<SnapshotContents> EngineStore::Recover() {
  if (!HasSnapshot()) {
    return Status::NotFound("storage dir '" + dir_ +
                            "' has no snapshot to recover from");
  }
  HYPRE_ASSIGN_OR_RETURN(SnapshotContents contents,
                         ReadSnapshot(env_, snapshot_path()));
  uint64_t snap_seq = contents.journal_sequence;
  snapshot_seq_ = snap_seq;

  // A missing WAL is a crash window between the snapshot rename and the
  // WAL rotation — the snapshot alone is the committed state, and creating
  // a fresh WAL at its base destroys nothing.
  if (!env_->FileExists(wal_path())) {
    HYPRE_RETURN_NOT_OK(RotateWal(snap_seq));
    return contents;
  }

  // Replay the WAL tail.
  HYPRE_ASSIGN_OR_RETURN(WalContents wal, ReadWal(env_, wal_path()));
  if (wal.base_seq > snap_seq) {
    return Status::Internal(StringFormat(
        "wal '%s' starts at sequence %llu, beyond the snapshot's %llu — "
        "the snapshot predates the log that references it",
        wal_path().c_str(), (unsigned long long)wal.base_seq,
        (unsigned long long)snap_seq));
  }
  for (const WalRecord& rec : wal.records) {
    uint64_t next = contents.db->journal().sequence();
    // Records below the snapshot (or already replayed — a re-spilled
    // segment) are baked in; skipping them is what makes replay
    // idempotent.
    if (rec.seq < next) continue;
    if (rec.seq != next) {
      return Status::Internal(StringFormat(
          "wal '%s': gap in the log — record sequence %llu where %llu "
          "was expected",
          wal_path().c_str(), (unsigned long long)rec.seq,
          (unsigned long long)next));
    }
    reldb::Table* table = contents.db->GetTable(rec.table);
    if (table == nullptr) {
      return Status::Internal(
          "wal '" + wal_path() + "': record " + std::to_string(rec.seq) +
          " names table '" + rec.table + "' absent from the snapshot");
    }
    if (rec.kind == reldb::Mutation::Kind::kAppend) {
      if (rec.row_id != table->num_rows()) {
        return Status::Internal(StringFormat(
            "wal '%s': record %llu appends row %llu to '%s' but the "
            "table is at row %zu — snapshot and log disagree",
            wal_path().c_str(), (unsigned long long)rec.seq,
            (unsigned long long)rec.row_id, rec.table.c_str(),
            table->num_rows()));
      }
      // AppendUnchecked re-journals the mutation, which is exactly what
      // keeps replayed sequence numbers aligned with the originals.
      table->AppendUnchecked(rec.row);
    } else {
      Status deleted = table->Delete(rec.row_id);
      if (!deleted.ok()) {
        return Status::Internal(StringFormat(
            "wal '%s': record %llu delete failed: %s", wal_path().c_str(),
            (unsigned long long)rec.seq, deleted.message().c_str()));
      }
    }
  }

  // Repair in place: re-attach to the surviving WAL, cutting off only its
  // torn tail. Rotating a fresh WAL here would rename a header-only file
  // over wal.log BEFORE the replayed tail was re-spilled — a crash in that
  // window would silently destroy fsync'd, acknowledged mutations. The
  // surviving WAL already holds every replayed record durably, so there is
  // nothing to rewrite; records below the snapshot's base are dead weight
  // that replay skips, and the next checkpoint rotates them away.
  HYPRE_ASSIGN_OR_RETURN(writer_,
                         WalWriter::Attach(env_, wal_path(), wal.valid_size));
  wal_seq_ = contents.db->journal().sequence();
  return contents;
}

}  // namespace storage
}  // namespace hypre
