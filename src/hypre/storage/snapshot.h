// Versioned binary snapshots of the full engine state.
//
// A snapshot captures everything needed to warm-start a session without
// re-reading CSVs or re-interning the key universe:
//
//   [8B magic "HYSNAP01"]
//   section kSectionMeta        JSON catalog: format version, the journal
//                               sequence the snapshot covers, table schemas
//                               + index columns, and one descriptor per
//                               probe engine (base SQL, key column, epoch,
//                               journal cursor, free-id list, leaf count).
//   section kSectionTableRows   one per table, in meta order: the PHYSICAL
//                               row vector including tombstones, so RowId
//                               space is preserved and journal replay
//                               addresses the same rows.
//   section kSectionDictionary  one per interned engine: the dense
//                               dictionary in id order with per-id live
//                               flags (the live mask IS the universe
//                               bitmap) — dead ids keep their stale value
//                               addressable without shadowing live keys.
//   section kSectionLeaf        one per cached leaf of that engine: the
//                               predicate rendered as parse-compatible SQL
//                               plus its bitmap words.
//   section kSectionEnd         explicit terminator.
//
// Every section payload is CRC32-checksummed (see format.h) and the file is
// written to a temp name, fsync'd, and renamed over the live name — a
// reader observes either the old complete snapshot or the new one, never a
// partial write. Readers fail closed: any checksum mismatch, truncation, or
// semantic inconsistency (wrong section order, counts that disagree with
// the catalog) aborts the load with no partial state escaping.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "hypre/probe_engine.h"
#include "hypre/storage/env.h"
#include "reldb/database.h"

namespace hypre {
namespace storage {

/// \brief One engine's durable identity + interned state.
struct SnapshotEngineState {
  /// The base query rendered by Query::ToSql() — round-trips through
  /// sqlparse::ParseSelect and doubles as the session's enhancer cache key.
  std::string base_sql;
  std::string key_column;
  core::EngineSnapshotImage image;
};

/// \brief Everything a snapshot file holds, decoded.
struct SnapshotContents {
  /// Journal sequence the snapshot covers: the restored journal starts
  /// numbering here and WAL records below it are already baked in.
  uint64_t journal_sequence = 0;
  std::unique_ptr<reldb::Database> db;
  std::vector<SnapshotEngineState> engines;
};

/// \brief Serializes `db` (+ engine images) covering `journal_sequence`
/// into the snapshot wire format. Pure encode, no I/O — the background
/// checkpointer captures the blob on the request thread (where the
/// database is quiescent) and hands only bytes to its worker.
std::string EncodeSnapshot(const reldb::Database& db,
                           uint64_t journal_sequence,
                           const std::vector<SnapshotEngineState>& engines);

/// \brief Atomically publishes an encoded snapshot blob to `path` via temp
/// file + fsync + rename. Touches nothing but the filesystem, so it is
/// safe off-thread while the database keeps mutating.
Status WriteSnapshotBlob(Env* env, const std::string& path,
                         const std::string& blob);

/// \brief Atomically writes a snapshot of `db` (+ engine images) covering
/// `journal_sequence` to `path` via temp file + fsync + rename.
/// (EncodeSnapshot + WriteSnapshotBlob in one step.)
Status WriteSnapshot(Env* env, const std::string& path,
                     const reldb::Database& db, uint64_t journal_sequence,
                     const std::vector<SnapshotEngineState>& engines);

/// \brief Reads and validates a snapshot, rebuilding the database (rows,
/// tombstones, indexes, journal start) from scratch. Fails closed — on any
/// error the returned state is an error Status, never a partial database.
Result<SnapshotContents> ReadSnapshot(Env* env, const std::string& path);

}  // namespace storage
}  // namespace hypre
