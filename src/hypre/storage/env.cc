#include "hypre/storage/env.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "common/string_util.h"

namespace hypre {
namespace storage {

namespace {

Status PosixError(const std::string& context, const std::string& path) {
  return Status::Internal(context + " '" + path + "': " +
                          std::strerror(errno));
}

class PosixWritableFile : public WritableFile {
 public:
  PosixWritableFile(int fd, std::string path)
      : fd_(fd), path_(std::move(path)) {}
  ~PosixWritableFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Append(const void* data, size_t n) override {
    const char* p = static_cast<const char*>(data);
    while (n > 0) {
      ssize_t written = ::write(fd_, p, n);
      if (written < 0) {
        if (errno == EINTR) continue;
        return PosixError(StringFormat("write (%zu bytes at offset %llu) to",
                                       n, (unsigned long long)offset_),
                          path_);
      }
      p += written;
      n -= static_cast<size_t>(written);
      offset_ += static_cast<uint64_t>(written);
    }
    return Status::OK();
  }

  Status Sync() override {
    if (::fsync(fd_) != 0) return PosixError("fsync", path_);
    return Status::OK();
  }

  Status Close() override {
    if (fd_ < 0) return Status::OK();
    int fd = fd_;
    fd_ = -1;
    if (::close(fd) != 0) return PosixError("close", path_);
    return Status::OK();
  }

 private:
  int fd_;
  std::string path_;
  uint64_t offset_ = 0;
};

class PosixEnv : public Env {
 public:
  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool truncate) override {
    int flags = O_WRONLY | O_CREAT | (truncate ? O_TRUNC : O_APPEND);
    int fd = ::open(path.c_str(), flags, 0644);
    if (fd < 0) return PosixError("open for writing", path);
    return std::unique_ptr<WritableFile>(
        std::make_unique<PosixWritableFile>(fd, path));
  }

  Result<std::string> ReadFileToString(const std::string& path) override {
    int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) return PosixError("open for reading", path);
    std::string out;
    char buf[1 << 16];
    for (;;) {
      ssize_t n = ::read(fd, buf, sizeof(buf));
      if (n < 0) {
        if (errno == EINTR) continue;
        ::close(fd);
        return PosixError(
            StringFormat("read at offset %zu from", out.size()), path);
      }
      if (n == 0) break;
      out.append(buf, static_cast<size_t>(n));
    }
    ::close(fd);
    return out;
  }

  Status RenameFile(const std::string& from, const std::string& to) override {
    if (::rename(from.c_str(), to.c_str()) != 0) {
      return PosixError("rename to '" + to + "' from", from);
    }
    // Make the rename itself durable: fsync the containing directory
    // (best-effort — some file systems refuse O_RDONLY dir fsync).
    size_t slash = to.find_last_of('/');
    std::string dir = slash == std::string::npos ? "." : to.substr(0, slash);
    int fd = ::open(dir.c_str(), O_RDONLY);
    if (fd >= 0) {
      (void)::fsync(fd);
      ::close(fd);
    }
    return Status::OK();
  }

  Status RemoveFile(const std::string& path) override {
    if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
      return PosixError("unlink", path);
    }
    return Status::OK();
  }

  bool FileExists(const std::string& path) override {
    struct stat st;
    return ::stat(path.c_str(), &st) == 0;
  }

  Result<uint64_t> FileSize(const std::string& path) override {
    struct stat st;
    if (::stat(path.c_str(), &st) != 0) return PosixError("stat", path);
    return static_cast<uint64_t>(st.st_size);
  }

  Status CreateDirIfMissing(const std::string& path) override {
    if (::mkdir(path.c_str(), 0755) != 0 && errno != EEXIST) {
      return PosixError("mkdir", path);
    }
    return Status::OK();
  }

  Status TruncateFile(const std::string& path, uint64_t size) override {
    if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
      return PosixError(
          StringFormat("truncate to %llu bytes", (unsigned long long)size),
          path);
    }
    return Status::OK();
  }
};

}  // namespace

Env* Env::Default() {
  static PosixEnv* env = new PosixEnv();
  return env;
}

// --- Fault injection --------------------------------------------------------

namespace {
constexpr uint64_t kNoFault = ~uint64_t{0};
}  // namespace

/// Wraps a base WritableFile and applies the env's plan to the write stream.
class FaultyWritableFile : public WritableFile {
 public:
  FaultyWritableFile(std::unique_ptr<WritableFile> base,
                     FaultInjectionEnv* env, std::string path)
      : base_(std::move(base)), env_(env), path_(std::move(path)) {}

  Status Append(const void* data, size_t n) override {
    if (env_->crashed_) return env_->CrashedStatus();
    const FaultPlan& plan = env_->plan_;
    bool applies = !env_->fired_ && env_->Matches(path_);
    uint64_t fault_at = applies ? plan.byte_offset : kNoFault;
    uint64_t end = offset_ + n;
    const char* p = static_cast<const char*>(data);

    if (applies && fault_at < end) {
      switch (plan.kind) {
        case FaultPlan::Kind::kTruncateWriteAt: {
          // Write the prefix up to the cut, then die.
          env_->fired_ = true;
          size_t keep = static_cast<size_t>(fault_at - offset_);
          if (keep > 0) (void)base_->Append(p, keep);
          (void)base_->Sync();  // the surviving prefix reaches the disk
          env_->crashed_ = true;
          return env_->CrashedStatus();
        }
        case FaultPlan::Kind::kFlipBitAt: {
          env_->fired_ = true;
          std::string corrupted(p, n);
          corrupted[static_cast<size_t>(fault_at - offset_)] ^= 0x01;
          offset_ = end;
          return base_->Append(corrupted.data(), corrupted.size());
        }
        case FaultPlan::Kind::kFailWriteAt: {
          env_->fired_ = true;
          return Status::Internal(
              "injected write failure at byte " +
              std::to_string(fault_at) + " of '" + path_ + "'");
        }
        default:
          break;
      }
    }
    offset_ = end;
    return base_->Append(p, n);
  }

  Status Sync() override {
    if (env_->crashed_) return env_->CrashedStatus();
    if (!env_->fired_ && env_->Matches(path_) &&
        env_->plan_.kind == FaultPlan::Kind::kFailSync) {
      env_->fired_ = true;
      env_->crashed_ = true;
      return Status::Internal("injected fsync failure on '" + path_ + "'");
    }
    return base_->Sync();
  }

  Status Close() override { return base_->Close(); }

 private:
  std::unique_ptr<WritableFile> base_;
  FaultInjectionEnv* env_;
  std::string path_;
  uint64_t offset_ = 0;
};

Result<std::unique_ptr<WritableFile>> FaultInjectionEnv::NewWritableFile(
    const std::string& path, bool truncate) {
  if (crashed_) return CrashedStatus();
  HYPRE_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> base,
                         base_->NewWritableFile(path, truncate));
  return std::unique_ptr<WritableFile>(
      std::make_unique<FaultyWritableFile>(std::move(base), this, path));
}

Result<std::string> FaultInjectionEnv::ReadFileToString(
    const std::string& path) {
  if (crashed_) return CrashedStatus();
  return base_->ReadFileToString(path);
}

Status FaultInjectionEnv::RenameFile(const std::string& from,
                                     const std::string& to) {
  if (crashed_) return CrashedStatus();
  return base_->RenameFile(from, to);
}

Status FaultInjectionEnv::RemoveFile(const std::string& path) {
  if (crashed_) return CrashedStatus();
  return base_->RemoveFile(path);
}

bool FaultInjectionEnv::FileExists(const std::string& path) {
  return base_->FileExists(path);
}

Result<uint64_t> FaultInjectionEnv::FileSize(const std::string& path) {
  if (crashed_) return CrashedStatus();
  return base_->FileSize(path);
}

Status FaultInjectionEnv::CreateDirIfMissing(const std::string& path) {
  if (crashed_) return CrashedStatus();
  return base_->CreateDirIfMissing(path);
}

Status FaultInjectionEnv::TruncateFile(const std::string& path,
                                       uint64_t size) {
  if (crashed_) return CrashedStatus();
  return base_->TruncateFile(path, size);
}

}  // namespace storage
}  // namespace hypre
