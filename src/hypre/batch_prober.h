// Batched, sharded combination probing.
//
// The scalar CombinationProber answers one combination probe at a time, so a
// frontier of F combinations re-streams every referenced leaf bitmap F
// times. BatchProber evaluates the whole frontier in one BLOCKED pass
// instead: the universe's bitmap words are partitioned into fixed-width
// shards, and for each shard every pending combination's OR-within-group /
// AND-across-groups words and popcounts are computed while that shard's
// leaf words are cache-resident. The inner word loops route through the
// parallel::WordKernels table (AVX2 when compiled in, scalar fallback
// otherwise; ProbeOptions::simd forces the scalar table for differentials).
//
// Parallelism: the blocked pass is cut into shard × frontier-block TILES
// (one tile = one shard's words × a block of combinations), and the tiles
// are scheduled one of three ways (ProbeOptions::scheduler):
//
//  * inline           — num_threads <= 1 (after auto-detect): the calling
//                       thread walks all tiles; no scratch allocation.
//  * kStaticSplit     — balanced contiguous tile ranges on spawned
//                       std::threads (the PR 2 shape, kept for comparison
//                       benches; the ceil-division tail imbalance is fixed
//                       by parallel::PartitionRange).
//  * kWorkStealing    — the default: tiles run on a persistent
//                       parallel::TaskPool with per-slot Chase-Lev deques
//                       and lazy binary splitting, so skewed tiles (mixed
//                       combination sizes, warm/cold leaves, tail shards)
//                       rebalance automatically and no per-batch thread
//                       spawn is paid.
//
// Per-combination counts are sums of per-tile popcounts accumulated into
// per-slot buffers reduced in slot order, and bitmap outputs write disjoint
// word ranges — so results are exact and byte-identical to the scalar path
// for every scheduler, thread count, and steal order, by contract.
//
// All probes are answered from the per-preference bitmaps the shared
// CombinationProber caches; the only DB work on this path is the bulk leaf
// prefetch (CombinationProber::PrefetchAll) before the first batch.
//
// Delta maintenance: the member bitmaps come from the CombinationProber,
// which revalidates them against the engine epoch, so batches issued after
// a ProbeEngine::Refresh() see the refreshed state. When the engine carries
// tombstoned keys, Compile() appends the engine's live mask to every
// combination as one more AND group (and the extension/pair kernels AND it
// in directly), keeping deleted keys out of every count and bitmap.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/status.h"
#include "hypre/combination.h"
#include "hypre/key_bitmap.h"

namespace hypre {
namespace parallel {
class TaskPool;
}  // namespace parallel

namespace core {

/// \brief How BatchProber schedules shard×frontier tiles across threads.
enum class ProbeScheduler {
  /// Balanced contiguous tile ranges on per-batch std::threads (the legacy
  /// static split; kept for regression tests and scaling benches).
  kStaticSplit,
  /// Work-stealing on a persistent parallel::TaskPool (the default).
  kWorkStealing,
};

/// \brief Knobs for the batch probe layer, threaded through the combination
/// algorithms.
struct ProbeOptions {
  /// 64-bit words per shard. Bounds the cache working set of one blocked
  /// pass: one shard touches shard_words * 8 bytes of every distinct leaf
  /// bitmap in the frontier. The default (512 words = 4 KiB per bitmap per
  /// shard) keeps ~50 concurrent leaves inside a 256 KiB L2 while keeping
  /// the per-shard loop overhead small.
  size_t shard_words = 512;
  /// Worker threads for tile evaluation. 1 (the default) evaluates inline
  /// on the calling thread; 0 = AUTO-DETECT: use
  /// std::thread::hardware_concurrency(), clamped to the tile count so no
  /// slot starts idle (in particular never more threads than shards when
  /// the frontier fits one block). Values > 1 are likewise clamped.
  size_t num_threads = 1;
  /// When false, algorithms that accept ProbeOptions fall back to scalar
  /// CombinationProber probing — the differential-testing switch.
  bool batching = true;
  /// Tile scheduler; see ProbeScheduler. Only consulted when the effective
  /// thread count is > 1.
  ProbeScheduler scheduler = ProbeScheduler::kWorkStealing;
  /// Work-stealing pool to run on. nullptr = the process-wide
  /// parallel::TaskPool::Shared(). api::Session injects its own session
  /// pool here. Not owned; must outlive the batch prober's calls.
  parallel::TaskPool* pool = nullptr;
  /// Minimum tiles per stolen chunk for kWorkStealing (TaskPool grain).
  /// 0 = auto (tiles / (8 * slots), min 1).
  size_t grain = 0;
  /// When false, the inner word loops use the portable scalar kernels even
  /// in a SIMD build — the SIMD-differential switch. Results are
  /// byte-identical either way.
  bool simd = true;
};

/// \brief Evaluates frontiers of combinations in blocked, optionally
/// multi-threaded passes over the shared CombinationProber's cached
/// per-preference bitmaps. `prober` must outlive the batch prober. Results
/// are byte-identical to probing each combination through the scalar
/// CombinationProber.
class BatchProber {
 public:
  explicit BatchProber(const CombinationProber* prober,
                       ProbeOptions options = ProbeOptions{})
      : prober_(prober), options_(options) {}

  /// \brief Matching-key counts for every combination in `frontier`, in
  /// order; counts[i] == CombinationProber::Count(frontier[i]).
  Result<std::vector<size_t>> CountBatch(
      const std::vector<Combination>& frontier) const;

  /// \brief CountBatch when options().batching, scalar
  /// CombinationProber::Count per combination otherwise — the shared
  /// dispatch the generation-based algorithms use around their frontiers.
  Result<std::vector<size_t>> CountMaybeBatched(
      const std::vector<Combination>& frontier) const;

  /// \brief Counts of `base AND preference[candidates[k]]` for each
  /// candidate — the PEPS expansion batch: all extensions of a popped DFS
  /// frame are verified in one blocked pass. `base` must be universe-sized.
  Result<std::vector<size_t>> CountExtensions(
      const KeyBitmap& base, const std::vector<size_t>& candidates) const;

  /// \brief AndCount for every preference pair in `pairs` — the PEPS pair
  /// table as one blocked upper-triangle pass.
  Result<std::vector<size_t>> CountPairs(
      const std::vector<std::pair<size_t, size_t>>& pairs) const;

  /// \brief Evaluates every combination into out->at(i), identical to
  /// CombinationProber::BitsInto on each element (including the empty-
  /// combination degenerate case). `out` is resized to the frontier.
  Status EvalBatch(const std::vector<Combination>& frontier,
                   std::vector<KeyBitmap>* out) const;

  const ProbeOptions& options() const { return options_; }
  const CombinationProber& prober() const { return *prober_; }

 private:
  // A frontier compiled to flat word-pointer arrays the shard kernels can
  // walk without touching Combination or Result machinery.
  struct CompiledFrontier {
    struct Group {
      uint32_t begin = 0;  // [begin, end) into member_words
      uint32_t end = 0;
    };
    struct Item {
      uint32_t begin = 0;  // [begin, end) into groups
      uint32_t end = 0;
    };
    std::vector<const uint64_t*> member_words;
    std::vector<Group> groups;
    std::vector<Item> items;
    size_t num_words = 0;
  };

  // The shard × frontier-block tiling of one batch. Tile t covers shard
  // t / num_item_tiles (its word range) × item block t % num_item_tiles, so
  // consecutive tiles share a shard and a stolen run stays cache-hot on the
  // same leaf words.
  struct TileGrid {
    size_t shard_words = 1;
    size_t num_shards = 0;
    size_t num_words = 0;
    size_t item_tile = 1;
    size_t num_item_tiles = 0;
    size_t num_items = 0;
    size_t num_tiles() const { return num_shards * num_item_tiles; }
  };

  Result<CompiledFrontier> Compile(
      const std::vector<Combination>& frontier) const;
  /// Resolves options_.num_threads (0 = auto) and clamps it so every slot
  /// can start with at least one tile.
  size_t PlanSlots(size_t num_words, size_t num_items) const;
  TileGrid MakeGrid(size_t num_words, size_t num_items, size_t slots) const;
  /// The pool a work-stealing run uses (options_.pool or the shared pool);
  /// null when the run is inline/static.
  parallel::TaskPool* SchedulePool(size_t slots) const;
  /// Runs `kernel(word_begin, word_end, item_begin, item_end, slot)` over
  /// every tile of `grid` on the configured scheduler. Slot ids are dense
  /// and < slots; each tile runs exactly once.
  template <typename Kernel>
  void ForEachTile(const TileGrid& grid, size_t slots, Kernel&& kernel) const;

  const CombinationProber* prober_;
  ProbeOptions options_;
  // Reused scratch for the single-threaded fast paths (CountExtensions runs
  // once per popped PEPS DFS frame), so hot batches do no per-call heap
  // allocation beyond the returned counts.
  mutable std::vector<const uint64_t*> ptr_scratch_;
  mutable std::vector<uint64_t> group_word_scratch_;
  mutable std::vector<uint64_t> acc_word_scratch_;
};

}  // namespace core
}  // namespace hypre
