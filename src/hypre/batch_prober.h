// Batched, sharded combination probing.
//
// The scalar CombinationProber answers one combination probe at a time, so a
// frontier of F combinations re-streams every referenced leaf bitmap F
// times. BatchProber evaluates the whole frontier in one BLOCKED pass
// instead: the universe's bitmap words are partitioned into fixed-width
// shards, and for each shard every pending combination's OR-within-group /
// AND-across-groups words and popcounts are computed while that shard's
// leaf words are cache-resident. The inner loop is straight-line word ops
// over contiguous arrays (auto-vectorizable, no Result plumbing, no virtual
// calls).
//
// Sharding is also the parallelism seam: with ProbeOptions::num_threads > 1
// the shards are split across std::thread workers. Per-combination counts
// are sums of per-shard popcounts and bitmap outputs write disjoint word
// ranges, so results are exact and deterministic for every thread count —
// the batch layer must stay byte-identical to the scalar path by contract.
//
// All probes are answered from the per-preference bitmaps the shared
// CombinationProber caches; the only DB work on this path is the bulk leaf
// prefetch (CombinationProber::PrefetchAll) before the first batch.
//
// Delta maintenance: the member bitmaps come from the CombinationProber,
// which revalidates them against the engine epoch, so batches issued after
// a ProbeEngine::Refresh() see the refreshed state. When the engine carries
// tombstoned keys, Compile() appends the engine's live mask to every
// combination as one more AND group (and the extension/pair kernels AND it
// in directly), keeping deleted keys out of every count and bitmap.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/status.h"
#include "hypre/combination.h"
#include "hypre/key_bitmap.h"

namespace hypre {
namespace core {

/// \brief Knobs for the batch probe layer, threaded through the combination
/// algorithms.
struct ProbeOptions {
  /// 64-bit words per shard. Bounds the cache working set of one blocked
  /// pass: one shard touches shard_words * 8 bytes of every distinct leaf
  /// bitmap in the frontier. The default (512 words = 4 KiB per bitmap per
  /// shard) keeps ~50 concurrent leaves inside a 256 KiB L2 while keeping
  /// the per-shard loop overhead small.
  size_t shard_words = 512;
  /// Worker threads for shard evaluation; <= 1 evaluates inline on the
  /// calling thread.
  size_t num_threads = 1;
  /// When false, algorithms that accept ProbeOptions fall back to scalar
  /// CombinationProber probing — the differential-testing switch.
  bool batching = true;
};

/// \brief Evaluates frontiers of combinations in blocked, optionally
/// multi-threaded passes over the shared CombinationProber's cached
/// per-preference bitmaps. `prober` must outlive the batch prober. Results
/// are byte-identical to probing each combination through the scalar
/// CombinationProber.
class BatchProber {
 public:
  explicit BatchProber(const CombinationProber* prober,
                       ProbeOptions options = ProbeOptions{})
      : prober_(prober), options_(options) {}

  /// \brief Matching-key counts for every combination in `frontier`, in
  /// order; counts[i] == CombinationProber::Count(frontier[i]).
  Result<std::vector<size_t>> CountBatch(
      const std::vector<Combination>& frontier) const;

  /// \brief CountBatch when options().batching, scalar
  /// CombinationProber::Count per combination otherwise — the shared
  /// dispatch the generation-based algorithms use around their frontiers.
  Result<std::vector<size_t>> CountMaybeBatched(
      const std::vector<Combination>& frontier) const;

  /// \brief Counts of `base AND preference[candidates[k]]` for each
  /// candidate — the PEPS expansion batch: all extensions of a popped DFS
  /// frame are verified in one blocked pass. `base` must be universe-sized.
  Result<std::vector<size_t>> CountExtensions(
      const KeyBitmap& base, const std::vector<size_t>& candidates) const;

  /// \brief AndCount for every preference pair in `pairs` — the PEPS pair
  /// table as one blocked upper-triangle pass.
  Result<std::vector<size_t>> CountPairs(
      const std::vector<std::pair<size_t, size_t>>& pairs) const;

  /// \brief Evaluates every combination into out->at(i), identical to
  /// CombinationProber::BitsInto on each element (including the empty-
  /// combination degenerate case). `out` is resized to the frontier.
  Status EvalBatch(const std::vector<Combination>& frontier,
                   std::vector<KeyBitmap>* out) const;

  const ProbeOptions& options() const { return options_; }
  const CombinationProber& prober() const { return *prober_; }

 private:
  // A frontier compiled to flat word-pointer arrays the shard kernels can
  // walk without touching Combination or Result machinery.
  struct CompiledFrontier {
    struct Group {
      uint32_t begin = 0;  // [begin, end) into member_words
      uint32_t end = 0;
    };
    struct Item {
      uint32_t begin = 0;  // [begin, end) into groups
      uint32_t end = 0;
    };
    std::vector<const uint64_t*> member_words;
    std::vector<Group> groups;
    std::vector<Item> items;
    size_t num_words = 0;
  };

  Result<CompiledFrontier> Compile(
      const std::vector<Combination>& frontier) const;
  /// Runs `kernel(shard_begin_word, shard_end_word, thread_index)` over all
  /// shards, splitting contiguous shard ranges across options_.num_threads.
  template <typename Kernel>
  void ForEachShard(size_t num_words, Kernel&& kernel) const;

  const CombinationProber* prober_;
  ProbeOptions options_;
  // Reused scratch for the single-threaded fast paths (CountExtensions runs
  // once per popped PEPS DFS frame), so hot batches do no per-call heap
  // allocation beyond the returned counts.
  mutable std::vector<const uint64_t*> ptr_scratch_;
  mutable std::vector<uint64_t> group_word_scratch_;
  mutable std::vector<uint64_t> acc_word_scratch_;
};

}  // namespace core
}  // namespace hypre
