// DEFAULT_VALUE seeding strategies (dissertation Table 12 / §6.3.1).
//
// When a qualitative preference connects two nodes and *neither* has an
// intensity yet, one node is seeded with a DEFAULT_VALUE and the other is
// computed from it via Eq. 4.1/4.2. The seed can be a fixed constant or an
// aggregate over the intensities the user has already provided, so no user
// is ever seeded outside the range of values they chose themselves.
#pragma once

#include <string>
#include <vector>

namespace hypre {
namespace core {

enum class DefaultValueStrategy {
  kFixed,        // "default": constant (0.5 in the dissertation)
  kMin,          // min over all existing intensities
  kMinPositive,  // min over intensities >= 0 (fallback 0)
  kMax,          // max over all existing intensities
  kMaxPositive,  // max over intensities in [0, 1)   (fallback 0)
  kAvg,          // average over all existing intensities
  kAvgPositive,  // average over intensities >= 0    (fallback 0)
};

const char* DefaultValueStrategyToString(DefaultValueStrategy strategy);

/// \brief Computes the seed value for a user given the intensities already
/// present in that user's profile.
///
/// Because the seed feeds Eq. 4.1/4.2 multiplicatively, a seed of exactly 1
/// would make every derived value 1 as well; following §6.3.1, any computed
/// seed >= 1 is clamped to 0.98 so the system never hands out the extreme
/// value on its own. `fixed_value` is used by kFixed and as the fallback
/// when no existing intensity satisfies a strategy's condition (the
/// *_positive strategies fall back to 0 per Table 12).
double ComputeDefaultValue(DefaultValueStrategy strategy,
                           const std::vector<double>& existing_intensities,
                           double fixed_value = 0.5);

}  // namespace core
}  // namespace hypre
