// AVX2 implementations of the streaming word kernels. This translation
// unit is the ONLY one compiled with -mavx2 (CMake HYPRE_SIMD=ON); without
// that flag it compiles to a stub returning null and ActiveWordKernels()
// dispatches to the scalar table. All loads/stores are unaligned — the
// shard grid cuts bitmap word storage at arbitrary offsets.
#include "hypre/parallel/word_kernels.h"

#if defined(__AVX2__) && !defined(HYPRE_FORCE_SCALAR_KERNELS)

#include <immintrin.h>

#include <bit>

namespace hypre {
namespace parallel {

namespace {

/// Per-byte popcount of a 256-bit lane: nibble lookup (Mula's algorithm).
inline __m256i PopcountBytes(__m256i v) {
  const __m256i lut = _mm256_setr_epi8(
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  __m256i lo = _mm256_and_si256(v, low_mask);
  __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low_mask);
  return _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                         _mm256_shuffle_epi8(lut, hi));
}

/// Horizontal sum of a 4 x u64 accumulator.
inline size_t HorizontalSum(__m256i acc) {
  return static_cast<size_t>(_mm256_extract_epi64(acc, 0)) +
         static_cast<size_t>(_mm256_extract_epi64(acc, 1)) +
         static_cast<size_t>(_mm256_extract_epi64(acc, 2)) +
         static_cast<size_t>(_mm256_extract_epi64(acc, 3));
}

void Avx2Copy(uint64_t* dst, const uint64_t* src, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(dst + i),
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i)));
  }
  for (; i < n; ++i) dst[i] = src[i];
}

void Avx2OrInto(uint64_t* dst, const uint64_t* src, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i d = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    __m256i s = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_or_si256(d, s));
  }
  for (; i < n; ++i) dst[i] |= src[i];
}

void Avx2AndInto(uint64_t* dst, const uint64_t* src, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i d = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    __m256i s = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_and_si256(d, s));
  }
  for (; i < n; ++i) dst[i] &= src[i];
}

void Avx2AndNotInto(uint64_t* dst, const uint64_t* src, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i d = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    __m256i s = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    // andnot(a, b) = ~a & b
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_andnot_si256(s, d));
  }
  for (; i < n; ++i) dst[i] &= ~src[i];
}

void Avx2AndTo(uint64_t* dst, const uint64_t* a, const uint64_t* b,
               size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_and_si256(va, vb));
  }
  for (; i < n; ++i) dst[i] = a[i] & b[i];
}

size_t Avx2Popcount(const uint64_t* src, size_t n) {
  __m256i acc = _mm256_setzero_si256();
  const __m256i zero = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    acc = _mm256_add_epi64(acc, _mm256_sad_epu8(PopcountBytes(v), zero));
  }
  size_t count = HorizontalSum(acc);
  for (; i < n; ++i) count += static_cast<size_t>(std::popcount(src[i]));
  return count;
}

size_t Avx2AndCount(const uint64_t* a, const uint64_t* b, size_t n) {
  __m256i acc = _mm256_setzero_si256();
  const __m256i zero = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    __m256i v = _mm256_and_si256(va, vb);
    acc = _mm256_add_epi64(acc, _mm256_sad_epu8(PopcountBytes(v), zero));
  }
  size_t count = HorizontalSum(acc);
  for (; i < n; ++i) {
    count += static_cast<size_t>(std::popcount(a[i] & b[i]));
  }
  return count;
}

size_t Avx2And3Count(const uint64_t* a, const uint64_t* b, const uint64_t* c,
                     size_t n) {
  __m256i acc = _mm256_setzero_si256();
  const __m256i zero = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    __m256i vc = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(c + i));
    __m256i v = _mm256_and_si256(_mm256_and_si256(va, vb), vc);
    acc = _mm256_add_epi64(acc, _mm256_sad_epu8(PopcountBytes(v), zero));
  }
  size_t count = HorizontalSum(acc);
  for (; i < n; ++i) {
    count += static_cast<size_t>(std::popcount(a[i] & b[i] & c[i]));
  }
  return count;
}

size_t Avx2AndCountMulti(const uint64_t* const* ops, size_t k, size_t n) {
  if (k == 0) return 0;
  __m256i acc = _mm256_setzero_si256();
  const __m256i zero = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ops[0] + i));
    for (size_t j = 1; j < k; ++j) {
      v = _mm256_and_si256(
          v, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ops[j] + i)));
    }
    acc = _mm256_add_epi64(acc, _mm256_sad_epu8(PopcountBytes(v), zero));
  }
  size_t count = HorizontalSum(acc);
  for (; i < n; ++i) {
    uint64_t w = ops[0][i];
    for (size_t j = 1; j < k && w != 0; ++j) w &= ops[j][i];
    count += static_cast<size_t>(std::popcount(w));
  }
  return count;
}

const WordKernels kAvx2Kernels = {
    "avx2",         Avx2Copy,     Avx2OrInto,   Avx2AndInto,
    Avx2AndNotInto, Avx2AndTo,    Avx2Popcount, Avx2AndCount,
    Avx2And3Count,  Avx2AndCountMulti,
};

}  // namespace

const WordKernels* Avx2WordKernelsOrNull() { return &kAvx2Kernels; }

}  // namespace parallel
}  // namespace hypre

#else  // !__AVX2__ || HYPRE_FORCE_SCALAR_KERNELS

namespace hypre {
namespace parallel {

const WordKernels* Avx2WordKernelsOrNull() { return nullptr; }

}  // namespace parallel
}  // namespace hypre

#endif
