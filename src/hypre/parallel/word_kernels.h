// Vectorized word kernels for the bitmap probe path.
//
// Every hot loop in KeyBitmap and BatchProber is a streaming pass over
// contiguous uint64_t words: OR-within-group, AND-across-groups, live-mask
// AND, and popcount accumulation. This header exposes those passes as a
// table of function pointers with two implementations:
//
//  * scalar — portable C++ (std::popcount word loop), always compiled. On
//    the default baseline build (no -march flags) std::popcount lowers to
//    the SWAR bit-hack sequence, not POPCNT.
//  * avx2 — 256-bit AVX2: 4 words per op, popcount via the nibble-lookup
//    (Mula) algorithm + SAD accumulation. Compiled only when CMake enables
//    HYPRE_SIMD (which adds -mavx2 to word_kernels_avx2.cc alone, so the
//    rest of the library stays baseline).
//
// Dispatch is COMPILE-TIME: ActiveWordKernels() returns the avx2 table when
// it was compiled in, the scalar table otherwise — no CPUID probing, so a
// HYPRE_SIMD build requires an AVX2 machine (build with -DHYPRE_SIMD=OFF
// for the portable fallback). Both tables stay reachable in every build:
// differential tests and ProbeOptions::simd=false route through
// ScalarWordKernels() to assert byte-identical results.
//
// Contract shared by both implementations: `n` is a word count, ranges may
// be unaligned (the shard grid cuts at arbitrary word offsets), and
// outputs/counts are exactly equal between variants — bitwise ops and
// popcount have no reassociation slack.
#pragma once

#include <cstddef>
#include <cstdint>

namespace hypre {
namespace parallel {

/// \brief One implementation of the streaming word passes. All pointers are
/// non-null; dst/src ranges must not overlap (except dst == a in and_to).
struct WordKernels {
  const char* name;  // "scalar" or "avx2"
  /// dst[i] = src[i]
  void (*copy)(uint64_t* dst, const uint64_t* src, size_t n);
  /// dst[i] |= src[i]
  void (*or_into)(uint64_t* dst, const uint64_t* src, size_t n);
  /// dst[i] &= src[i]
  void (*and_into)(uint64_t* dst, const uint64_t* src, size_t n);
  /// dst[i] &= ~src[i]
  void (*andnot_into)(uint64_t* dst, const uint64_t* src, size_t n);
  /// dst[i] = a[i] & b[i]
  void (*and_to)(uint64_t* dst, const uint64_t* a, const uint64_t* b,
                 size_t n);
  /// sum(popcount(src[i]))
  size_t (*popcount)(const uint64_t* src, size_t n);
  /// sum(popcount(a[i] & b[i]))
  size_t (*and_count)(const uint64_t* a, const uint64_t* b, size_t n);
  /// sum(popcount(a[i] & b[i] & c[i])) — the live-mask variant of and_count.
  size_t (*and3_count)(const uint64_t* a, const uint64_t* b,
                       const uint64_t* c, size_t n);
  /// sum(popcount(ops[0][i] & ... & ops[k-1][i])); k >= 1.
  size_t (*and_count_multi)(const uint64_t* const* ops, size_t k, size_t n);
};

/// \brief The portable implementation (always available).
const WordKernels& ScalarWordKernels();

/// \brief The compile-time-dispatched implementation: avx2 when compiled
/// in, scalar otherwise.
const WordKernels& ActiveWordKernels();

/// \brief True when the avx2 table was compiled in (HYPRE_SIMD build on
/// x86-64).
bool SimdKernelsCompiled();

/// \brief ProbeOptions::simd routing: true -> ActiveWordKernels() (avx2
/// when available), false -> the scalar fallback.
inline const WordKernels& SelectWordKernels(bool simd) {
  return simd ? ActiveWordKernels() : ScalarWordKernels();
}

/// \brief Implementation hook for the AVX2 translation unit; null when not
/// compiled in. Use ActiveWordKernels() instead.
const WordKernels* Avx2WordKernelsOrNull();

}  // namespace parallel
}  // namespace hypre
