// 64-byte-aligned, default-initializing allocator for bitmap word storage.
//
// Two properties matter for the probe path:
//
//  * Alignment: word arrays start on a cache-line (and AVX2-friendly)
//    boundary, so the SIMD kernels never straddle a line at word 0 and
//    per-shard slices share no false-sharing line with the vector header.
//  * Default-init on resize: the zero-argument construct() is a no-op, so
//    vector<uint64_t, AlignedNoInitAllocator>::resize() leaves new memory
//    UNINITIALIZED instead of memset-ing it on the calling thread. The
//    first touch then happens in a parallel zeroing pass (see
//    KeyBitmap(num_bits, pool)), which places each page on the NUMA node of
//    the worker that will probe it — first-touch placement without any
//    libnuma dependency. Callers that skip the pool path still get zeroed
//    words because KeyBitmap's scalar constructors zero explicitly.
#pragma once

#include <cstddef>
#include <new>
#include <utility>

namespace hypre {
namespace parallel {

template <typename T>
class AlignedNoInitAllocator {
 public:
  using value_type = T;
  static constexpr std::align_val_t kAlignment{64};

  AlignedNoInitAllocator() noexcept = default;
  template <typename U>
  AlignedNoInitAllocator(const AlignedNoInitAllocator<U>&) noexcept {}

  T* allocate(size_t n) {
    return static_cast<T*>(::operator new(n * sizeof(T), kAlignment));
  }
  void deallocate(T* p, size_t) noexcept {
    ::operator delete(p, kAlignment);
  }

  /// Zero-argument construct is a no-op: resize() default-initializes
  /// (i.e. leaves trivially-constructible words uninitialized).
  template <typename U>
  void construct(U*) noexcept {}
  /// Value construction forwards as usual (copies, fills).
  template <typename U, typename... Args>
  void construct(U* p, Args&&... args) {
    ::new (static_cast<void*>(p)) U(std::forward<Args>(args)...);
  }

  template <typename U>
  struct rebind {
    using other = AlignedNoInitAllocator<U>;
  };

  friend bool operator==(const AlignedNoInitAllocator&,
                         const AlignedNoInitAllocator&) {
    return true;
  }
  friend bool operator!=(const AlignedNoInitAllocator&,
                         const AlignedNoInitAllocator&) {
    return false;
  }
};

}  // namespace parallel
}  // namespace hypre
