#include "hypre/parallel/word_kernels.h"

#include <bit>

namespace hypre {
namespace parallel {

namespace {

void ScalarCopy(uint64_t* dst, const uint64_t* src, size_t n) {
  for (size_t i = 0; i < n; ++i) dst[i] = src[i];
}

void ScalarOrInto(uint64_t* dst, const uint64_t* src, size_t n) {
  for (size_t i = 0; i < n; ++i) dst[i] |= src[i];
}

void ScalarAndInto(uint64_t* dst, const uint64_t* src, size_t n) {
  for (size_t i = 0; i < n; ++i) dst[i] &= src[i];
}

void ScalarAndNotInto(uint64_t* dst, const uint64_t* src, size_t n) {
  for (size_t i = 0; i < n; ++i) dst[i] &= ~src[i];
}

void ScalarAndTo(uint64_t* dst, const uint64_t* a, const uint64_t* b,
                 size_t n) {
  for (size_t i = 0; i < n; ++i) dst[i] = a[i] & b[i];
}

size_t ScalarPopcount(const uint64_t* src, size_t n) {
  size_t count = 0;
  for (size_t i = 0; i < n; ++i) {
    count += static_cast<size_t>(std::popcount(src[i]));
  }
  return count;
}

size_t ScalarAndCount(const uint64_t* a, const uint64_t* b, size_t n) {
  size_t count = 0;
  for (size_t i = 0; i < n; ++i) {
    count += static_cast<size_t>(std::popcount(a[i] & b[i]));
  }
  return count;
}

size_t ScalarAnd3Count(const uint64_t* a, const uint64_t* b,
                       const uint64_t* c, size_t n) {
  size_t count = 0;
  for (size_t i = 0; i < n; ++i) {
    count += static_cast<size_t>(std::popcount(a[i] & b[i] & c[i]));
  }
  return count;
}

size_t ScalarAndCountMulti(const uint64_t* const* ops, size_t k, size_t n) {
  if (k == 0) return 0;
  size_t count = 0;
  for (size_t i = 0; i < n; ++i) {
    uint64_t acc = ops[0][i];
    for (size_t j = 1; j < k && acc != 0; ++j) acc &= ops[j][i];
    count += static_cast<size_t>(std::popcount(acc));
  }
  return count;
}

const WordKernels kScalarKernels = {
    "scalar",       ScalarCopy,     ScalarOrInto,   ScalarAndInto,
    ScalarAndNotInto, ScalarAndTo,  ScalarPopcount, ScalarAndCount,
    ScalarAnd3Count,  ScalarAndCountMulti,
};

}  // namespace

const WordKernels& ScalarWordKernels() { return kScalarKernels; }

const WordKernels& ActiveWordKernels() {
  const WordKernels* avx2 = Avx2WordKernelsOrNull();
  return avx2 != nullptr ? *avx2 : kScalarKernels;
}

bool SimdKernelsCompiled() { return Avx2WordKernelsOrNull() != nullptr; }

}  // namespace parallel
}  // namespace hypre
