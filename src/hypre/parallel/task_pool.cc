#include "hypre/parallel/task_pool.h"

#include <algorithm>
#include <cassert>
#include <cinttypes>
#include <cstdio>

#include "hypre/telemetry/registry.h"

namespace hypre {
namespace parallel {

namespace {

// True while the current thread is executing a region body; nested
// ParallelFor calls run inline instead of deadlocking on the region mutex.
thread_local bool t_in_region = false;

}  // namespace

Range PartitionRange(size_t n, size_t parts, size_t part) {
  if (parts == 0) return Range{0, n};
  size_t base = n / parts;
  size_t rem = n % parts;
  size_t begin = part * base + std::min(part, rem);
  size_t size = base + (part < rem ? 1 : 0);
  return Range{begin, begin + size};
}

// --- RangeDeque -------------------------------------------------------------
//
// The memory-ordering discipline follows the weak-memory Chase-Lev
// formulation (Lê et al., PPoPP 2013), with the standalone fences replaced
// by seq_cst operations on top_/bottom_ at the racing points — equivalent
// ordering, and exact (not just heuristically clean) under TSan, which does
// not model standalone fences.

void RangeDeque::Reset(Range r) {
  top_.store(0, std::memory_order_relaxed);
  if (r.empty()) {
    bottom_.store(0, std::memory_order_relaxed);
    return;
  }
  slots_[0].store(Pack(r), std::memory_order_relaxed);
  bottom_.store(1, std::memory_order_relaxed);
}

bool RangeDeque::PushBottom(Range r) {
  int64_t b = bottom_.load(std::memory_order_relaxed);
  int64_t t = top_.load(std::memory_order_acquire);
  if (b - t >= static_cast<int64_t>(kCapacity)) return false;  // full
  slots_[static_cast<size_t>(b) & (kCapacity - 1)].store(
      Pack(r), std::memory_order_relaxed);
  // Publish the slot before the new bottom becomes visible to thieves.
  bottom_.store(b + 1, std::memory_order_seq_cst);
  return true;
}

bool RangeDeque::PopBottom(Range* out) {
  int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
  bottom_.store(b, std::memory_order_seq_cst);
  int64_t t = top_.load(std::memory_order_seq_cst);
  if (t > b) {
    // Empty: restore bottom.
    bottom_.store(b + 1, std::memory_order_relaxed);
    return false;
  }
  uint64_t packed = slots_[static_cast<size_t>(b) & (kCapacity - 1)].load(
      std::memory_order_relaxed);
  if (t == b) {
    // Last element: race against a thief for it via top.
    bool won = top_.compare_exchange_strong(t, t + 1,
                                            std::memory_order_seq_cst,
                                            std::memory_order_seq_cst);
    bottom_.store(b + 1, std::memory_order_relaxed);
    if (!won) return false;
    *out = Unpack(packed);
    return true;
  }
  *out = Unpack(packed);
  return true;
}

bool RangeDeque::StealTop(Range* out) {
  int64_t t = top_.load(std::memory_order_seq_cst);
  int64_t b = bottom_.load(std::memory_order_seq_cst);
  if (t >= b) return false;  // empty
  uint64_t packed = slots_[static_cast<size_t>(t) & (kCapacity - 1)].load(
      std::memory_order_relaxed);
  if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                    std::memory_order_seq_cst)) {
    return false;  // lost the race; caller retries elsewhere
  }
  *out = Unpack(packed);
  return true;
}

// --- TaskPool ---------------------------------------------------------------

TaskPool::TaskPool(size_t num_workers) {
  if (num_workers == 0) {
    unsigned hw = std::thread::hardware_concurrency();
    num_workers = hw > 1 ? hw - 1 : 0;
  }
  slots_.reserve(num_workers + 1);
  for (size_t s = 0; s < num_workers + 1; ++s) {
    slots_.push_back(std::make_unique<Slot>());
  }
  workers_.reserve(num_workers);
  for (size_t w = 0; w < num_workers; ++w) {
    workers_.emplace_back([this, w] { WorkerMain(w); });
  }
}

TaskPool::~TaskPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

TaskPool* TaskPool::Shared() {
  // Leaked intentionally: parked workers are free, and tearing the pool
  // down at static-destruction time would race engine teardown.
  static TaskPool* pool = new TaskPool();
  return pool;
}

void TaskPool::ParallelFor(size_t n, size_t grain, size_t max_slots,
                           const Body& body) {
  if (n == 0) return;
  assert(n < (uint64_t{1} << 32) && "range tasks pack into 32-bit bounds");
  size_t slots = max_parallelism();
  if (max_slots > 0) slots = std::min(slots, max_slots);
  if (grain == 0) grain = std::max<size_t>(1, n / (8 * std::max<size_t>(1, slots)));
  // Every participating slot should start with at least one grain of work.
  slots = std::min(slots, (n + grain - 1) / grain);
  if (slots <= 1 || t_in_region) {
    body(0, n, 0);
    return;
  }

  std::lock_guard<std::mutex> serialize(serialize_);
  Region region;
  region.body = &body;
  region.grain = grain;
  region.num_slots = slots;
  region.remaining.store(n, std::memory_order_relaxed);
  region.exited.store(0, std::memory_order_relaxed);
  for (size_t s = 0; s < slots; ++s) {
    slots_[s]->deque.Reset(PartitionRange(n, slots, s));
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    region_ = &region;
    ++generation_;
  }
  work_cv_.notify_all();

  RunSlot(&region, 0);  // the caller is slot 0

  // The region object lives on this stack frame: wait until every
  // participating worker has stopped touching it.
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [&] {
    return region.exited.load(std::memory_order_acquire) == slots - 1;
  });
  region_ = nullptr;
}

void TaskPool::WorkerMain(size_t worker_index) {
  size_t slot = worker_index + 1;  // slot 0 is the caller
  uint64_t seen_generation = 0;
  for (;;) {
    Region* region = nullptr;
    bool participate = false;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      bool parked = false;
      work_cv_.wait(lock, [&] {
        bool ready = shutdown_ ||
                     (region_ != nullptr && generation_ != seen_generation);
        // First false evaluation = this worker is about to block: that is
        // the park. Counted under mutex_, so a plain relaxed add is safe.
        if (!ready && !parked) {
          parked = true;
          HYPRE_TELEMETRY_STMT(slots_[slot]->parks.fetch_add(
              1, std::memory_order_relaxed));
        }
        return ready;
      });
      if (parked) {
        HYPRE_TELEMETRY_STMT(slots_[slot]->unparks.fetch_add(
            1, std::memory_order_relaxed));
      }
      if (shutdown_) return;
      seen_generation = generation_;
      region = region_;
      // num_slots is read under the lock: a worker whose slot is not
      // participating must never dereference the region afterwards (the
      // caller only waits for PARTICIPATING workers before destroying it).
      participate = slot < region->num_slots;
    }
    if (!participate) continue;
    RunSlot(region, slot);
    region->exited.fetch_add(1, std::memory_order_release);
    {
      std::lock_guard<std::mutex> lock(mutex_);
    }
    done_cv_.notify_one();
  }
}

void TaskPool::RunSlot(Region* region, size_t slot) {
  t_in_region = true;
  Range range;
  while (region->remaining.load(std::memory_order_acquire) > 0) {
    if (PopOrSteal(region, slot, &range)) {
      Execute(region, slot, range);
    } else {
      // Nothing stealable but indices remain: another slot is executing the
      // last chunks (and may split more off). Yield until it retires them.
      std::this_thread::yield();
    }
  }
  t_in_region = false;
}

bool TaskPool::PopOrSteal(Region* region, size_t slot, Range* out) {
  if (slots_[slot]->deque.PopBottom(out)) return true;
  for (size_t i = 1; i < region->num_slots; ++i) {
    size_t victim = (slot + i) % region->num_slots;
    if (slots_[victim]->deque.StealTop(out)) {
      HYPRE_TELEMETRY_STMT(
          slots_[slot]->steals.fetch_add(1, std::memory_order_relaxed));
      return true;
    }
  }
  return false;
}

void TaskPool::Execute(Region* region, size_t slot, Range range) {
  // Lazy binary splitting: shed the second half to the deque (where thieves
  // take it) until the piece in hand is within the grain. If the deque ever
  // fills (it cannot at kCapacity=256, but stay safe) run the piece whole.
  while (range.size() > region->grain) {
    size_t mid = range.begin + (range.size() + 1) / 2;
    if (!slots_[slot]->deque.PushBottom(Range{mid, range.end})) break;
    range.end = mid;
    HYPRE_TELEMETRY_STMT(
        slots_[slot]->splits.fetch_add(1, std::memory_order_relaxed));
  }
  HYPRE_TELEMETRY_STMT(
      slots_[slot]->executes.fetch_add(1, std::memory_order_relaxed));
  (*region->body)(range.begin, range.end, slot);
  region->remaining.fetch_sub(range.size(), std::memory_order_acq_rel);
}

TaskPool::Stats TaskPool::DumpStats() const {
  Stats stats;
  for (const std::unique_ptr<Slot>& slot : slots_) {
    stats.steals += slot->steals.load(std::memory_order_relaxed);
    stats.executes += slot->executes.load(std::memory_order_relaxed);
    stats.splits += slot->splits.load(std::memory_order_relaxed);
    stats.parks += slot->parks.load(std::memory_order_relaxed);
    stats.unparks += slot->unparks.load(std::memory_order_relaxed);
  }
  return stats;
}

std::string TaskPool::Stats::ToString() const {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "steals=%" PRIu64 " executes=%" PRIu64 " splits=%" PRIu64
                " parks=%" PRIu64 " unparks=%" PRIu64,
                steals, executes, splits, parks, unparks);
  return buf;
}

void TaskPool::PublishStats() const {
  using telemetry::MetricsRegistry;
  Stats stats = DumpStats();
  static telemetry::Gauge* steals = MetricsRegistry::Global().GetGauge(
      "hypre_parallel_steals", "parallel",
      "Successful work-steal migrations since pool construction");
  static telemetry::Gauge* executes = MetricsRegistry::Global().GetGauge(
      "hypre_parallel_executes", "parallel",
      "Chunks executed by the work-stealing runtime");
  static telemetry::Gauge* splits = MetricsRegistry::Global().GetGauge(
      "hypre_parallel_splits", "parallel",
      "Lazy-binary-split halves shed back onto slot deques");
  static telemetry::Gauge* parks = MetricsRegistry::Global().GetGauge(
      "hypre_parallel_parks", "parallel",
      "Worker park events (blocked on the region condvar)");
  static telemetry::Gauge* unparks = MetricsRegistry::Global().GetGauge(
      "hypre_parallel_unparks", "parallel",
      "Worker unpark events (woken into a region or shutdown)");
  steals->Set(int64_t(stats.steals));
  executes->Set(int64_t(stats.executes));
  splits->Set(int64_t(stats.splits));
  parks->Set(int64_t(stats.parks));
  unparks->Set(int64_t(stats.unparks));
}

}  // namespace parallel
}  // namespace hypre
