// Work-stealing parallel runtime: a persistent worker pool for the probe
// path (and any other data-parallel loop in the engine).
//
// The PR 2 batch kernels parallelized shard passes with a static
// std::thread partition: contiguous shard ranges, one thread per range,
// spawned and joined per batch. That shape leaves cores idle whenever the
// work is skewed — mixed combination sizes, warm/cold leaf mixes, tail
// shards — and pays a thread spawn per batch. TaskPool replaces it with a
// Galois/Cilk-style work-stealing loop:
//
//  * Persistent workers. The pool owns N worker threads that PARK on a
//    condition variable between parallel regions, so an idle pool costs
//    nothing. A ParallelFor publishes one region, wakes the workers, and
//    the calling thread participates as slot 0.
//  * Per-slot Chase-Lev deques. Each participating slot owns a lock-free
//    deque of range tasks (packed [begin,end) chunks of the iteration
//    space). Owners push/pop at the bottom (LIFO, cache-hot); thieves
//    steal from the top.
//  * Lazy binary splitting = steal-half. A slot executing a range first
//    splits halves back onto its own deque until the piece in hand is at
//    most the chunk grain. The deque top therefore always holds the
//    LARGEST outstanding piece (~half the slot's remaining work), so one
//    steal migrates half a victim's backlog — the steal-half policy
//    without any extra protocol.
//  * Deterministic results by construction. The runtime guarantees every
//    index in [0, n) is executed exactly once and that slot ids are dense
//    (< the slot count it reports); it does NOT guarantee which slot runs
//    which chunk. Callers that reduce must therefore use per-slot
//    accumulators combined in slot order with exact (associative,
//    commutative) operations — which is what the batch-probe kernels'
//    popcount sums and disjoint bitmap writes already are, so results stay
//    byte-identical for every thread count and schedule.
//
// One region runs at a time per pool (regions are full barriers and the
// probe path issues them back to back); concurrent ParallelFor calls from
// different threads serialize on an internal mutex. A ParallelFor issued
// from inside a region body runs inline on the calling slot.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "hypre/telemetry/telemetry.h"

namespace hypre {
namespace parallel {

/// \brief A contiguous task range [begin, end).
struct Range {
  size_t begin = 0;
  size_t end = 0;
  size_t size() const { return end - begin; }
  bool empty() const { return begin >= end; }
};

/// \brief Balanced contiguous partition of [0, n) into `parts` ranges:
/// part sizes differ by at most one, and no part is empty unless parts > n
/// (the tail-imbalance fix for the old ceil-division split, which could
/// hand later workers nothing while early workers carried two chunks).
Range PartitionRange(size_t n, size_t parts, size_t part);

/// \brief Fixed-capacity Chase-Lev work-stealing deque of Range tasks.
/// PushBottom/PopBottom are owner-only; StealTop may be called by any
/// thread. Ranges are packed into one 64-bit atomic per slot (32-bit
/// begin/end), so every buffer access is an atomic op — race-free under
/// TSan without fence tricks. Capacity is bounded: the owner's lazy binary
/// splitting pushes at most log2(range) entries, so 256 slots are far more
/// than any region needs; PushBottom reports overflow and the caller simply
/// runs the range inline.
class RangeDeque {
 public:
  static constexpr size_t kCapacity = 256;  // power of two

  /// \brief Resets to a single seeded range (or empty). Only valid while no
  /// other thread accesses the deque (region setup).
  void Reset(Range r);

  bool PushBottom(Range r);
  bool PopBottom(Range* out);
  bool StealTop(Range* out);

 private:
  static uint64_t Pack(Range r) {
    return (static_cast<uint64_t>(r.begin) << 32) |
           static_cast<uint64_t>(r.end);
  }
  static Range Unpack(uint64_t v) {
    return Range{static_cast<size_t>(v >> 32),
                 static_cast<size_t>(v & 0xffffffffu)};
  }

  std::atomic<int64_t> top_{0};
  std::atomic<int64_t> bottom_{0};
  std::atomic<uint64_t> slots_[kCapacity];
};

/// \brief Persistent work-stealing worker pool. Construct once, share
/// across engines/requests (api::Session keeps one per session); workers
/// park between regions. Thread-safe: concurrent ParallelFor calls
/// serialize.
class TaskPool {
 public:
  /// \brief Body of a parallel loop: `body(begin, end, slot)` processes the
  /// chunk [begin, end); `slot` is a dense id < the slot count (use it to
  /// index per-slot accumulators/scratch).
  using Body = std::function<void(size_t begin, size_t end, size_t slot)>;

  /// \param num_workers worker THREADS to spawn (the caller participates as
  ///        one more slot). 0 = auto: hardware_concurrency() - 1, so a
  ///        default pool saturates the machine without oversubscribing.
  explicit TaskPool(size_t num_workers = 0);
  ~TaskPool();
  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  size_t num_workers() const { return workers_.size(); }
  /// \brief Maximum concurrent slots a region can use (workers + caller).
  size_t max_parallelism() const { return workers_.size() + 1; }

  /// \brief Runs `body` over [0, n) in work-stolen chunks of at least
  /// `grain` indices (0 = auto: n / (8 * slots), min 1). At most
  /// `max_slots` slots participate (0 = all); the effective slot count is
  /// also capped so every slot starts with work. Blocks until every index
  /// has executed. Runs inline on the caller when n or the slot budget is
  /// too small to parallelize, or when called from inside another region.
  void ParallelFor(size_t n, size_t grain, size_t max_slots,
                   const Body& body);

  /// \brief Process-wide shared pool (auto-sized), created on first use.
  /// Call sites that get no pool handle (ProbeOptions::pool == nullptr with
  /// num_threads != 1) fall back to this.
  static TaskPool* Shared();

  /// \brief Cumulative scheduler counters since pool construction, folded
  /// across every slot. Increments are compiled out with
  /// -DHYPRE_TELEMETRY=OFF (everything reads zero there); with telemetry on
  /// they cost one relaxed add per scheduling event — per chunk, never per
  /// index — which is what makes skew finally explainable: a balanced
  /// region steals ~0 times, a skewed one steals proportionally to the
  /// imbalance, and parks count how often workers ran dry.
  struct Stats {
    uint64_t steals = 0;    // successful StealTop migrations
    uint64_t executes = 0;  // chunks executed (post-split pieces)
    uint64_t splits = 0;    // lazy-binary-split halves shed to deques
    uint64_t parks = 0;     // workers blocking on the region condvar
    uint64_t unparks = 0;   // parked workers woken into a region/shutdown
    std::string ToString() const;
  };
  /// \brief Folds all slots' counters. Safe to call anytime; between
  /// regions the values are exact, during one they are a live snapshot.
  Stats DumpStats() const;
  /// \brief Mirrors DumpStats() into the global MetricsRegistry gauges
  /// (hypre_parallel_steals, ...). Idempotent — gauges are Set, not added.
  void PublishStats() const;

 private:
  struct Region {
    const Body* body = nullptr;
    size_t grain = 1;
    size_t num_slots = 0;
    std::atomic<size_t> remaining{0};  // indices not yet executed
    std::atomic<size_t> exited{0};     // participating workers done
  };
  struct alignas(64) Slot {
    RangeDeque deque;
    // Scheduler telemetry, owner-or-thief incremented (relaxed; folded by
    // DumpStats). Present in every build so layout is config-independent;
    // increments vanish under -DHYPRE_TELEMETRY=OFF.
    std::atomic<uint64_t> steals{0};
    std::atomic<uint64_t> executes{0};
    std::atomic<uint64_t> splits{0};
    std::atomic<uint64_t> parks{0};
    std::atomic<uint64_t> unparks{0};
  };

  void WorkerMain(size_t worker_index);
  /// Work loop for one participating slot; returns when the region drains.
  void RunSlot(Region* region, size_t slot);
  bool PopOrSteal(Region* region, size_t slot, Range* out);
  /// Splits halves of `range` back onto `slot`'s deque until <= grain,
  /// executes the remainder, and retires its indices.
  void Execute(Region* region, size_t slot, Range range);

  std::vector<std::unique_ptr<Slot>> slots_;  // [0] = caller slot
  std::vector<std::thread> workers_;

  std::mutex mutex_;                 // guards region_/generation_/shutdown_
  std::condition_variable work_cv_;  // workers park here
  std::condition_variable done_cv_;  // caller waits for workers to exit
  Region* region_ = nullptr;
  uint64_t generation_ = 0;
  bool shutdown_ = false;
  std::mutex serialize_;  // one region at a time
};

}  // namespace parallel
}  // namespace hypre
