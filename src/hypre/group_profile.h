// Group profiles (dissertation §8.2, future work #3).
//
// "Combining multiple profiles into a group (e.g., all users working in the
// database group) a system can have access to more preferences and
// recommend items using the collective list" — especially useful when one
// member has few preferences of their own. This module merges the member
// profiles of a HYPRE graph into a synthetic group user: predicates held by
// several members are aggregated (average / min / max over the members'
// intensities, weighted by how many members hold them under kAverage), and
// the result can be inserted back into a graph or used directly for
// enhancement.
#pragma once

#include <vector>

#include "common/status.h"
#include "hypre/hypre_graph.h"
#include "hypre/preference.h"

namespace hypre {
namespace core {

struct GroupProfileConfig {
  enum class Aggregation { kAverage, kMin, kMax };
  Aggregation aggregation = Aggregation::kAverage;
  /// Keep a predicate only if at least this many members hold it (1 keeps
  /// everything; higher values surface the group consensus).
  size_t min_support = 1;
  /// Include members' negative (dislike) preferences.
  bool include_negative = true;
};

/// \brief Merges the members' preferences into a profile for `group_uid`.
/// Fails if `members` is empty or contains `group_uid`.
Result<std::vector<QuantitativePreference>> BuildGroupProfile(
    const HypreGraph& graph, const std::vector<UserId>& members,
    UserId group_uid, const GroupProfileConfig& config = {});

/// \brief Convenience: builds the group profile and inserts it into
/// `graph` as user `group_uid`. Returns the number of preferences added.
Result<size_t> MaterializeGroupProfile(HypreGraph* graph,
                                       const std::vector<UserId>& members,
                                       UserId group_uid,
                                       const GroupProfileConfig& config = {});

}  // namespace core
}  // namespace hypre
