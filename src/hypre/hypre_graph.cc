#include "hypre/hypre_graph.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"
#include "graphdb/traversal.h"
#include "hypre/intensity.h"

namespace hypre {
namespace core {

namespace {

constexpr const char* kPrefers = "PREFERS";
constexpr const char* kCycle = "CYCLE";
constexpr const char* kDiscard = "DISCARD";
constexpr const char* kUidIndexLabel = "uidIndex";
constexpr double kEps = 1e-9;

const char* EdgeTypeName(EdgeLabel label) {
  switch (label) {
    case EdgeLabel::kPrefers:
      return kPrefers;
    case EdgeLabel::kCycle:
      return kCycle;
    case EdgeLabel::kDiscard:
      return kDiscard;
  }
  return "?";
}

EdgeLabel EdgeLabelFromType(const std::string& type) {
  if (type == kCycle) return EdgeLabel::kCycle;
  if (type == kDiscard) return EdgeLabel::kDiscard;
  return EdgeLabel::kPrefers;
}

Provenance ProvenanceFromString(const std::string& s) {
  if (s == "computed") return Provenance::kComputed;
  if (s == "default") return Provenance::kDefault;
  return Provenance::kUser;
}

}  // namespace

const char* EdgeLabelToString(EdgeLabel label) { return EdgeTypeName(label); }

const char* ProvenanceToString(Provenance provenance) {
  switch (provenance) {
    case Provenance::kUser:
      return "user";
    case Provenance::kComputed:
      return "computed";
    case Provenance::kDefault:
      return "default";
  }
  return "?";
}

HypreGraph::HypreGraph(HypreGraphConfig config) : config_(config) {
  // The dissertation's indexing scheme (§4.3): label every preference node
  // with `uidIndex` and index it on the `uid` property.
  Status st = store_.CreateIndex(kUidIndexLabel, "uid");
  (void)st;  // cannot fail on an empty store
}

graphdb::NodeId HypreGraph::GetOrCreateNode(UserId uid,
                                            const std::string& predicate,
                                            bool* created) {
  auto key = std::make_pair(uid, predicate);
  auto it = node_by_key_.find(key);
  if (it != node_by_key_.end()) {
    if (created != nullptr) *created = false;
    return it->second;
  }
  graphdb::PropertyMap props;
  props["uid"] = graphdb::PropertyValue(static_cast<int64_t>(uid));
  props["predicate"] = graphdb::PropertyValue(predicate);
  graphdb::NodeId id = store_.AddNode({kUidIndexLabel}, std::move(props));
  node_by_key_.emplace(std::move(key), id);
  nodes_by_user_[uid].push_back(id);
  if (created != nullptr) *created = true;
  return id;
}

void HypreGraph::SetIntensity(graphdb::NodeId node, double intensity,
                              Provenance provenance) {
  Status st =
      store_.SetNodeProperty(node, "intensity",
                             graphdb::PropertyValue(intensity));
  (void)st;
  st = store_.SetNodeProperty(
      node, "provenance",
      graphdb::PropertyValue(std::string(ProvenanceToString(provenance))));
  (void)st;
}

Result<graphdb::NodeId> HypreGraph::AddQuantitative(
    const QuantitativePreference& pref) {
  if (!IsValidQuantitativeIntensity(pref.intensity)) {
    return Status::InvalidArgument(StringFormat(
        "quantitative intensity %f outside [-1, 1]", pref.intensity));
  }
  if (pref.predicate.empty()) {
    return Status::InvalidArgument("empty predicate");
  }
  bool created = false;
  graphdb::NodeId id = GetOrCreateNode(pref.uid, pref.predicate, &created);
  auto existing = NodeIntensity(id);
  if (created || !existing.has_value()) {
    SetIntensity(id, pref.intensity, Provenance::kUser);
    return id;
  }
  auto provenance = NodeProvenance(id);
  if (provenance == Provenance::kUser) {
    // Duplicate user preference: average the two values (§4.5 Step 1).
    SetIntensity(id, (*existing + pref.intensity) / 2.0, Provenance::kUser);
  } else {
    // A user-provided value supersedes a computed/default one.
    SetIntensity(id, pref.intensity, Provenance::kUser);
  }
  ReconcileIncidentEdges(id);
  return id;
}

bool HypreGraph::IsRecomputable(graphdb::NodeId node) const {
  if (store_.Degree(node, kPrefers) != 0) return false;
  auto provenance = NodeProvenance(node);
  return provenance.has_value() && *provenance != Provenance::kUser;
}

double HypreGraph::DefaultSeed(UserId uid) const {
  std::vector<double> existing;
  auto it = nodes_by_user_.find(uid);
  if (it != nodes_by_user_.end()) {
    for (graphdb::NodeId id : it->second) {
      auto v = NodeIntensity(id);
      if (v) existing.push_back(*v);
    }
  }
  return ComputeDefaultValue(config_.default_strategy, existing,
                             config_.fixed_default);
}

Result<QualitativeInsertResult> HypreGraph::AddQualitative(
    const QualitativePreference& pref) {
  if (!std::isfinite(pref.intensity) || pref.intensity < -1.0 ||
      pref.intensity > 1.0) {
    return Status::InvalidArgument(StringFormat(
        "qualitative intensity %f outside [-1, 1]", pref.intensity));
  }
  if (pref.left.empty() || pref.right.empty()) {
    return Status::InvalidArgument("empty predicate in qualitative preference");
  }
  QualitativeInsertResult result;

  // Proposition 7: a negative strength means the reversed statement holds
  // with the absolute strength.
  std::string left_pred = pref.left;
  std::string right_pred = pref.right;
  double ql = pref.intensity;
  if (ql < 0.0) {
    std::swap(left_pred, right_pred);
    ql = -ql;
    result.reversed = true;
  }
  if (left_pred == right_pred) {
    return Status::InvalidArgument(
        "qualitative preference relates a predicate to itself: " + left_pred);
  }

  graphdb::NodeId left =
      GetOrCreateNode(pref.uid, left_pred, &result.left_created);
  graphdb::NodeId right =
      GetOrCreateNode(pref.uid, right_pred, &result.right_created);

  graphdb::PropertyMap edge_props;
  edge_props["intensity"] = graphdb::PropertyValue(ql);

  // Cycle check (Algorithm 1 line 6): a PREFERS path right ~> left plus the
  // new edge would form a cycle; insert but label CYCLE and do not touch
  // intensities.
  if (graphdb::HasPath(store_, right, left, kPrefers)) {
    HYPRE_ASSIGN_OR_RETURN(
        result.edge, store_.AddEdge(left, right, kCycle, edge_props));
    result.label = EdgeLabel::kCycle;
    return result;
  }

  auto left_value = NodeIntensity(left);
  auto right_value = NodeIntensity(right);

  EdgeLabel label = EdgeLabel::kPrefers;
  if (left_value && right_value) {
    if (*left_value + kEps >= *right_value) {
      // Consistent: nothing to recompute.
    } else if (IsRecomputable(left)) {
      SetIntensity(left, IntensityLeft(ql, *right_value),
                   Provenance::kComputed);
      result.computed_left = true;
    } else if (IsRecomputable(right)) {
      SetIntensity(right, IntensityRight(ql, *left_value),
                   Provenance::kComputed);
      result.computed_right = true;
    } else {
      // Incompatible intensities on anchored nodes: keep the edge for later
      // but exclude it from traversal (§6.2.3 "incompatible intensities").
      label = EdgeLabel::kDiscard;
    }
  } else if (right_value) {
    SetIntensity(left, IntensityLeft(ql, *right_value), Provenance::kComputed);
    result.computed_left = true;
  } else if (left_value) {
    SetIntensity(right, IntensityRight(ql, *left_value),
                 Provenance::kComputed);
    result.computed_right = true;
  } else {
    // Scenario 3 (§6.3): seed the right node, compute the left.
    double seed = DefaultSeed(pref.uid);
    SetIntensity(right, seed, Provenance::kDefault);
    SetIntensity(left, IntensityLeft(ql, seed), Provenance::kComputed);
    result.used_default = true;
    result.computed_left = true;
  }

  HYPRE_ASSIGN_OR_RETURN(result.edge, store_.AddEdge(left, right,
                                                     EdgeTypeName(label),
                                                     edge_props));
  result.label = label;
  return result;
}

std::vector<PreferenceEntry> HypreGraph::ListPreferences(
    UserId uid, bool include_negative) const {
  std::vector<PreferenceEntry> out;
  auto it = nodes_by_user_.find(uid);
  if (it == nodes_by_user_.end()) return out;
  for (graphdb::NodeId id : it->second) {
    auto intensity = NodeIntensity(id);
    if (!intensity) continue;
    if (!include_negative && *intensity < 0.0) continue;
    PreferenceEntry entry;
    entry.node = id;
    auto predicate = store_.GetNodeProperty(id, "predicate");
    entry.predicate = predicate ? predicate->AsString() : "";
    entry.intensity = *intensity;
    auto provenance = NodeProvenance(id);
    entry.provenance = provenance ? *provenance : Provenance::kUser;
    out.push_back(std::move(entry));
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const PreferenceEntry& a, const PreferenceEntry& b) {
                     if (a.intensity != b.intensity) {
                       return a.intensity > b.intensity;
                     }
                     return a.predicate < b.predicate;
                   });
  return out;
}

std::vector<QualitativeEntry> HypreGraph::ListQualitative(
    UserId uid, bool prefers_only) const {
  std::vector<QualitativeEntry> out;
  auto it = nodes_by_user_.find(uid);
  if (it == nodes_by_user_.end()) return out;
  for (graphdb::NodeId id : it->second) {
    for (graphdb::EdgeId eid : store_.OutEdges(id)) {
      const graphdb::Edge* edge = store_.GetEdge(eid).value();
      EdgeLabel label = EdgeLabelFromType(edge->type);
      if (prefers_only && label != EdgeLabel::kPrefers) continue;
      QualitativeEntry entry;
      entry.edge = eid;
      entry.left = edge->src;
      entry.right = edge->dst;
      auto lp = store_.GetNodeProperty(edge->src, "predicate");
      auto rp = store_.GetNodeProperty(edge->dst, "predicate");
      entry.left_predicate = lp ? lp->AsString() : "";
      entry.right_predicate = rp ? rp->AsString() : "";
      auto intensity = graphdb::GetProperty(edge->props, "intensity");
      entry.intensity = intensity ? intensity->NumericValue() : 0.0;
      entry.label = label;
      out.push_back(std::move(entry));
    }
  }
  return out;
}

graphdb::NodeId HypreGraph::FindNode(UserId uid,
                                     const std::string& predicate) const {
  auto it = node_by_key_.find(std::make_pair(uid, predicate));
  if (it == node_by_key_.end()) return graphdb::kInvalidNode;
  return it->second;
}

std::vector<graphdb::NodeId> HypreGraph::UserNodes(UserId uid) const {
  auto it = nodes_by_user_.find(uid);
  if (it == nodes_by_user_.end()) return {};
  return it->second;
}

std::optional<double> HypreGraph::NodeIntensity(graphdb::NodeId id) const {
  auto v = store_.GetNodeProperty(id, "intensity");
  if (!v) return std::nullopt;
  return v->NumericValue();
}

std::optional<Provenance> HypreGraph::NodeProvenance(
    graphdb::NodeId id) const {
  auto v = store_.GetNodeProperty(id, "provenance");
  if (!v) return std::nullopt;
  return ProvenanceFromString(v->AsString());
}

std::vector<UserId> HypreGraph::Users() const {
  std::vector<UserId> out;
  out.reserve(nodes_by_user_.size());
  for (const auto& [uid, nodes] : nodes_by_user_) out.push_back(uid);
  return out;
}

EdgeLabelCounts HypreGraph::CountEdgeLabels() const {
  EdgeLabelCounts counts;
  store_.ForEachEdge([&](const graphdb::Edge& edge) {
    switch (EdgeLabelFromType(edge.type)) {
      case EdgeLabel::kPrefers:
        ++counts.prefers;
        break;
      case EdgeLabel::kCycle:
        ++counts.cycle;
        break;
      case EdgeLabel::kDiscard:
        ++counts.discard;
        break;
    }
  });
  return counts;
}

void HypreGraph::ReconcileIncidentEdges(graphdb::NodeId node) {
  auto check = [&](graphdb::EdgeId eid) {
    const graphdb::Edge* edge = store_.GetEdge(eid).value();
    if (EdgeLabelFromType(edge->type) != EdgeLabel::kPrefers) return;
    auto left = NodeIntensity(edge->src);
    auto right = NodeIntensity(edge->dst);
    if (left && right && *left + kEps < *right) {
      Status st = store_.SetEdgeType(eid, kDiscard);
      (void)st;
    }
  };
  for (graphdb::EdgeId eid : store_.OutEdges(node, kPrefers)) check(eid);
  for (graphdb::EdgeId eid : store_.InEdges(node, kPrefers)) check(eid);
}

Status HypreGraph::RemovePreference(UserId uid,
                                    const std::string& predicate) {
  graphdb::NodeId id = FindNode(uid, predicate);
  if (id == graphdb::kInvalidNode) {
    return Status::NotFound("no preference '" + predicate + "' for user");
  }
  HYPRE_RETURN_NOT_OK(store_.RemoveNode(id));
  node_by_key_.erase(std::make_pair(uid, predicate));
  auto it = nodes_by_user_.find(uid);
  if (it != nodes_by_user_.end()) {
    auto& nodes = it->second;
    nodes.erase(std::remove(nodes.begin(), nodes.end(), id), nodes.end());
    if (nodes.empty()) nodes_by_user_.erase(it);
  }
  return Status::OK();
}

Result<size_t> HypreGraph::RemoveQualitative(UserId uid,
                                             const std::string& left,
                                             const std::string& right) {
  graphdb::NodeId src = FindNode(uid, left);
  graphdb::NodeId dst = FindNode(uid, right);
  if (src == graphdb::kInvalidNode || dst == graphdb::kInvalidNode) {
    return size_t{0};
  }
  size_t removed = 0;
  for (graphdb::EdgeId eid : store_.OutEdges(src)) {
    const graphdb::Edge* edge = store_.GetEdge(eid).value();
    if (edge->dst != dst) continue;
    HYPRE_RETURN_NOT_OK(store_.RemoveEdge(eid));
    ++removed;
  }
  return removed;
}

Result<graphdb::NodeId> HypreGraph::RestoreNode(
    UserId uid, const std::string& predicate, std::optional<double> intensity,
    std::optional<Provenance> provenance) {
  if (predicate.empty()) return Status::InvalidArgument("empty predicate");
  if (FindNode(uid, predicate) != graphdb::kInvalidNode) {
    return Status::AlreadyExists("node already exists: " + predicate);
  }
  if (intensity && !IsValidQuantitativeIntensity(*intensity)) {
    return Status::InvalidArgument("restored intensity out of range");
  }
  bool created = false;
  graphdb::NodeId id = GetOrCreateNode(uid, predicate, &created);
  if (intensity) {
    SetIntensity(id, *intensity,
                 provenance ? *provenance : Provenance::kUser);
  }
  return id;
}

Result<graphdb::EdgeId> HypreGraph::RestoreEdge(graphdb::NodeId src,
                                                graphdb::NodeId dst,
                                                EdgeLabel label,
                                                double intensity) {
  graphdb::PropertyMap props;
  props["intensity"] = graphdb::PropertyValue(intensity);
  return store_.AddEdge(src, dst, EdgeTypeName(label), std::move(props));
}

Status HypreGraph::CheckInvariants() const {
  Status failure = Status::OK();
  store_.ForEachNode([&](const graphdb::Node& node) {
    if (!failure.ok()) return;
    auto intensity = graphdb::GetProperty(node.props, "intensity");
    if (intensity &&
        !IsValidQuantitativeIntensity(intensity->NumericValue())) {
      failure = Status::Internal(StringFormat(
          "node %llu intensity %f out of range",
          (unsigned long long)node.id, intensity->NumericValue()));
    }
  });
  HYPRE_RETURN_NOT_OK(failure);

  store_.ForEachEdge([&](const graphdb::Edge& edge) {
    if (!failure.ok()) return;
    if (EdgeLabelFromType(edge.type) != EdgeLabel::kPrefers) return;
    auto left = NodeIntensity(edge.src);
    auto right = NodeIntensity(edge.dst);
    if (left && right && *left + kEps < *right) {
      failure = Status::Internal(StringFormat(
          "PREFERS edge %llu violates left >= right (%f < %f)",
          (unsigned long long)edge.id, *left, *right));
    }
  });
  HYPRE_RETURN_NOT_OK(failure);

  for (const auto& [uid, nodes] : nodes_by_user_) {
    if (!graphdb::IsAcyclic(store_, nodes, kPrefers)) {
      return Status::Internal(StringFormat(
          "PREFERS subgraph of user %lld has a cycle", (long long)uid));
    }
  }
  return Status::OK();
}

}  // namespace core
}  // namespace hypre
