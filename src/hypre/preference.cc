#include "hypre/preference.h"

#include <algorithm>

#include "sqlparse/parser.h"

namespace hypre {
namespace core {

namespace {

void CollectAttributeNames(const reldb::Expr& expr,
                           std::set<std::string>* out) {
  using reldb::ExprKind;
  switch (expr.kind()) {
    case ExprKind::kColumnRef:
      out->insert(
          static_cast<const reldb::ColumnRefExpr&>(expr).QualifiedName());
      return;
    case ExprKind::kLiteral:
      return;
    case ExprKind::kCompare: {
      const auto& c = static_cast<const reldb::CompareExpr&>(expr);
      CollectAttributeNames(*c.lhs(), out);
      CollectAttributeNames(*c.rhs(), out);
      return;
    }
    case ExprKind::kBetween:
      CollectAttributeNames(
          *static_cast<const reldb::BetweenExpr&>(expr).column(), out);
      return;
    case ExprKind::kInList:
      CollectAttributeNames(
          *static_cast<const reldb::InListExpr&>(expr).column(), out);
      return;
    case ExprKind::kAnd:
    case ExprKind::kOr:
      for (const auto& child :
           static_cast<const reldb::NaryExpr&>(expr).children()) {
        CollectAttributeNames(*child, out);
      }
      return;
    case ExprKind::kNot:
      CollectAttributeNames(*static_cast<const reldb::NotExpr&>(expr).child(),
                            out);
      return;
  }
}

}  // namespace

Result<std::set<std::string>> PredicateAttributes(
    const std::string& predicate) {
  HYPRE_ASSIGN_OR_RETURN(reldb::ExprPtr expr,
                         sqlparse::ParsePredicate(predicate));
  std::set<std::string> out;
  CollectAttributeNames(*expr, &out);
  return out;
}

Result<PreferenceAtom> MakeAtom(const std::string& predicate,
                                double intensity) {
  PreferenceAtom atom;
  atom.predicate = predicate;
  atom.intensity = intensity;
  HYPRE_ASSIGN_OR_RETURN(atom.expr, sqlparse::ParsePredicate(predicate));
  CollectAttributeNames(*atom.expr, &atom.attributes);
  std::string key;
  for (const auto& attr : atom.attributes) {
    if (!key.empty()) key += "|";
    key += attr;
  }
  atom.attribute_key = key;
  return atom;
}

void SortByIntensityDesc(std::vector<PreferenceAtom>* atoms) {
  std::stable_sort(atoms->begin(), atoms->end(),
                   [](const PreferenceAtom& a, const PreferenceAtom& b) {
                     if (a.intensity != b.intensity) {
                       return a.intensity > b.intensity;
                     }
                     return a.predicate < b.predicate;
                   });
}

}  // namespace core
}  // namespace hypre
