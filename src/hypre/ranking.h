// Tuple ranking by matched preferences (dissertation §4.6.1, Example 6).
#pragma once

#include <vector>

#include "common/status.h"
#include "hypre/preference.h"
#include "hypre/query_enhancement.h"
#include "reldb/value.h"

namespace hypre {
namespace core {

/// \brief A tuple key with its combined intensity.
struct RankedTuple {
  reldb::Value key;
  double intensity = 0.0;

  bool operator==(const RankedTuple& other) const {
    return key.Compare(other.key) == 0 && intensity == other.intensity;
  }
};

/// \brief Scores every tuple that matches at least one preference: the
/// tuple's combined intensity is f_and over the intensities of all the
/// preferences it matches (Example 6 / Table 9 semantics). Results are
/// sorted descending by intensity (ties by key for determinism).
///
/// This is the brute-force ground truth the Top-K algorithms are validated
/// against; it runs one probe per preference plus one evaluation per
/// (tuple, preference) pair.
Result<std::vector<RankedTuple>> ScoreTuplesByPreferences(
    const QueryEnhancer& enhancer,
    const std::vector<PreferenceAtom>& preferences);

/// \brief Sorts ranked tuples descending by intensity, ties by key.
void SortRanked(std::vector<RankedTuple>* tuples);

}  // namespace core
}  // namespace hypre
