#include "hypre/batch_prober.h"

#include <algorithm>
#include <bit>
#include <thread>

namespace hypre {
namespace core {

namespace {

/// Shards a kernel pass walks over `num_words` words — the batch-shape unit
/// reported into ProbeStats (and split across threads by ForEachShard).
size_t NumShards(const ProbeOptions& options, size_t num_words) {
  size_t shard_words = std::max<size_t>(1, options.shard_words);
  return (num_words + shard_words - 1) / shard_words;
}

}  // namespace

Result<BatchProber::CompiledFrontier> BatchProber::Compile(
    const std::vector<Combination>& frontier) const {
  CompiledFrontier compiled;
  // With tombstoned keys in the engine, the live mask joins every non-empty
  // combination as one more single-member AND group, so the shard kernels
  // mask deleted keys out with zero extra code paths — byte-identical to
  // the scalar prober, which ANDs the same mask.
  const uint64_t* mask_words = nullptr;
  if (prober_->engine().has_tombstones()) {
    HYPRE_ASSIGN_OR_RETURN(const KeyBitmap* live,
                           prober_->engine().UniverseBitmap());
    mask_words = live->word_data();
    compiled.num_words = live->num_words();
  }
  for (const auto& combination : frontier) {
    CompiledFrontier::Item item;
    item.begin = static_cast<uint32_t>(compiled.groups.size());
    for (const auto& group : combination.groups) {
      CompiledFrontier::Group g;
      g.begin = static_cast<uint32_t>(compiled.member_words.size());
      for (size_t member : group.members) {
        HYPRE_ASSIGN_OR_RETURN(const KeyBitmap* bits,
                               prober_->PreferenceBits(member));
        compiled.member_words.push_back(bits->word_data());
        compiled.num_words = bits->num_words();
      }
      g.end = static_cast<uint32_t>(compiled.member_words.size());
      compiled.groups.push_back(g);
    }
    if (mask_words != nullptr && !combination.groups.empty()) {
      CompiledFrontier::Group g;
      g.begin = static_cast<uint32_t>(compiled.member_words.size());
      compiled.member_words.push_back(mask_words);
      g.end = static_cast<uint32_t>(compiled.member_words.size());
      compiled.groups.push_back(g);
    }
    item.end = static_cast<uint32_t>(compiled.groups.size());
    compiled.items.push_back(item);
  }
  return compiled;
}

template <typename Kernel>
void BatchProber::ForEachShard(size_t num_words, Kernel&& kernel) const {
  size_t shard_words = std::max<size_t>(1, options_.shard_words);
  size_t num_shards = (num_words + shard_words - 1) / shard_words;
  size_t num_threads = std::max<size_t>(1, options_.num_threads);
  num_threads = std::min(num_threads, std::max<size_t>(1, num_shards));

  auto run_range = [&](size_t shard_begin, size_t shard_end,
                       size_t thread_idx) {
    for (size_t s = shard_begin; s < shard_end; ++s) {
      size_t w0 = s * shard_words;
      size_t w1 = std::min(num_words, w0 + shard_words);
      kernel(w0, w1, thread_idx);
    }
  };

  if (num_threads <= 1 || num_shards <= 1) {
    run_range(0, num_shards, 0);
    return;
  }
  // Contiguous shard ranges per worker; per-thread accumulators make the
  // reduction exact and deterministic for every thread count.
  std::vector<std::thread> workers;
  workers.reserve(num_threads);
  size_t per = (num_shards + num_threads - 1) / num_threads;
  for (size_t t = 0; t < num_threads; ++t) {
    size_t begin = std::min(num_shards, t * per);
    size_t end = std::min(num_shards, begin + per);
    if (begin >= end) break;
    workers.emplace_back(run_range, begin, end, t);
  }
  for (auto& worker : workers) worker.join();
}

Result<std::vector<size_t>> BatchProber::CountBatch(
    const std::vector<Combination>& frontier) const {
  std::vector<size_t> counts(frontier.size(), 0);
  if (frontier.empty()) return counts;
  HYPRE_ASSIGN_OR_RETURN(CompiledFrontier plan, Compile(frontier));

  size_t num_threads = std::max<size_t>(1, options_.num_threads);
  size_t shard_words = std::max<size_t>(1, options_.shard_words);
  // Per-thread scratch: one OR-group buffer and one AND accumulator, each
  // one shard wide. The kernels below stream CONTIGUOUS word runs per
  // member (hoisted pointers, auto-vectorizable) instead of gathering all
  // members per word. Single-threaded runs accumulate straight into
  // `counts` through reused member scratch (no per-call allocations);
  // threaded runs use per-thread buffers reduced after the join.
  bool inline_run = num_threads == 1;
  std::vector<std::vector<size_t>> partial(
      inline_run ? 0 : num_threads,
      std::vector<size_t>(frontier.size(), 0));
  std::vector<std::vector<uint64_t>> group_scratch(
      inline_run ? 0 : num_threads, std::vector<uint64_t>(shard_words));
  std::vector<std::vector<uint64_t>> acc_scratch(
      inline_run ? 0 : num_threads, std::vector<uint64_t>(shard_words));
  if (inline_run) {
    if (group_word_scratch_.size() < shard_words) {
      group_word_scratch_.resize(shard_words);
      acc_word_scratch_.resize(shard_words);
    }
  }
  ForEachShard(plan.num_words, [&](size_t w0, size_t w1, size_t thread_idx) {
    std::vector<size_t>& mine = inline_run ? counts : partial[thread_idx];
    uint64_t* grp = inline_run ? group_word_scratch_.data()
                               : group_scratch[thread_idx].data();
    uint64_t* acc = inline_run ? acc_word_scratch_.data()
                               : acc_scratch[thread_idx].data();
    size_t len = w1 - w0;
    for (size_t i = 0; i < plan.items.size(); ++i) {
      const auto& item = plan.items[i];
      // Empty combination: matches the scalar path's empty bitmap (count 0).
      if (item.begin == item.end) continue;
      // acc_src tracks the current accumulated words; it stays a borrowed
      // member pointer until a second group forces a materialized AND.
      const uint64_t* acc_src = nullptr;
      for (uint32_t g = item.begin; g < item.end; ++g) {
        const auto& group = plan.groups[g];
        const uint64_t* group_src;
        if (group.end - group.begin == 1) {
          group_src = plan.member_words[group.begin] + w0;
        } else {
          const uint64_t* m0 = plan.member_words[group.begin] + w0;
          for (size_t w = 0; w < len; ++w) grp[w] = m0[w];
          for (uint32_t m = group.begin + 1; m < group.end; ++m) {
            const uint64_t* mw = plan.member_words[m] + w0;
            for (size_t w = 0; w < len; ++w) grp[w] |= mw[w];
          }
          group_src = grp;
        }
        if (acc_src == nullptr) {
          if (group_src == grp && item.end - item.begin > 1) {
            // grp is overwritten by the next group's OR fold; materialize.
            for (size_t w = 0; w < len; ++w) acc[w] = grp[w];
            acc_src = acc;
          } else {
            acc_src = group_src;
          }
        } else {
          for (size_t w = 0; w < len; ++w) acc[w] = acc_src[w] & group_src[w];
          acc_src = acc;
        }
      }
      size_t count = 0;
      for (size_t w = 0; w < len; ++w) {
        count += static_cast<size_t>(std::popcount(acc_src[w]));
      }
      mine[i] += count;
    }
  });
  for (const auto& mine : partial) {
    for (size_t i = 0; i < counts.size(); ++i) counts[i] += mine[i];
  }
  prober_->engine().NoteBatchAnswered(frontier.size(),
                                      NumShards(options_, plan.num_words));
  return counts;
}

Result<std::vector<size_t>> BatchProber::CountMaybeBatched(
    const std::vector<Combination>& frontier) const {
  if (options_.batching) return CountBatch(frontier);
  std::vector<size_t> counts;
  counts.reserve(frontier.size());
  for (const Combination& combination : frontier) {
    HYPRE_ASSIGN_OR_RETURN(size_t count, prober_->Count(combination));
    counts.push_back(count);
  }
  return counts;
}

Result<std::vector<size_t>> BatchProber::CountExtensions(
    const KeyBitmap& base, const std::vector<size_t>& candidates) const {
  std::vector<size_t> counts(candidates.size(), 0);
  if (candidates.empty()) return counts;
  ptr_scratch_.clear();
  for (size_t candidate : candidates) {
    HYPRE_ASSIGN_OR_RETURN(const KeyBitmap* bits,
                           prober_->PreferenceBits(candidate));
    ptr_scratch_.push_back(bits->word_data());
  }
  const uint64_t* base_words = base.word_data();
  size_t num_words = base.num_words();
  const uint64_t* mask = nullptr;
  if (prober_->engine().has_tombstones()) {
    HYPRE_ASSIGN_OR_RETURN(const KeyBitmap* live,
                           prober_->engine().UniverseBitmap());
    mask = live->word_data();
  }

  size_t num_threads = std::max<size_t>(1, options_.num_threads);
  bool inline_run = num_threads == 1;
  std::vector<std::vector<size_t>> partial(
      inline_run ? 0 : num_threads,
      std::vector<size_t>(candidates.size(), 0));
  ForEachShard(num_words, [&](size_t w0, size_t w1, size_t thread_idx) {
    std::vector<size_t>& mine = inline_run ? counts : partial[thread_idx];
    for (size_t i = 0; i < ptr_scratch_.size(); ++i) {
      const uint64_t* cand = ptr_scratch_[i];
      size_t count = 0;
      if (mask == nullptr) {
        for (size_t w = w0; w < w1; ++w) {
          count += static_cast<size_t>(std::popcount(base_words[w] & cand[w]));
        }
      } else {
        for (size_t w = w0; w < w1; ++w) {
          count += static_cast<size_t>(
              std::popcount(base_words[w] & cand[w] & mask[w]));
        }
      }
      mine[i] += count;
    }
  });
  for (const auto& mine : partial) {
    for (size_t i = 0; i < counts.size(); ++i) counts[i] += mine[i];
  }
  prober_->engine().NoteBatchAnswered(candidates.size(),
                                      NumShards(options_, num_words));
  return counts;
}

Result<std::vector<size_t>> BatchProber::CountPairs(
    const std::vector<std::pair<size_t, size_t>>& pairs) const {
  std::vector<size_t> counts(pairs.size(), 0);
  if (pairs.empty()) return counts;
  std::vector<std::pair<const uint64_t*, const uint64_t*>> words(pairs.size());
  size_t num_words = 0;
  for (size_t i = 0; i < pairs.size(); ++i) {
    HYPRE_ASSIGN_OR_RETURN(const KeyBitmap* a,
                           prober_->PreferenceBits(pairs[i].first));
    HYPRE_ASSIGN_OR_RETURN(const KeyBitmap* b,
                           prober_->PreferenceBits(pairs[i].second));
    words[i] = {a->word_data(), b->word_data()};
    num_words = a->num_words();
  }
  const uint64_t* mask = nullptr;
  if (prober_->engine().has_tombstones()) {
    HYPRE_ASSIGN_OR_RETURN(const KeyBitmap* live,
                           prober_->engine().UniverseBitmap());
    mask = live->word_data();
  }

  size_t num_threads = std::max<size_t>(1, options_.num_threads);
  bool inline_run = num_threads == 1;
  std::vector<std::vector<size_t>> partial(
      inline_run ? 0 : num_threads, std::vector<size_t>(pairs.size(), 0));
  ForEachShard(num_words, [&](size_t w0, size_t w1, size_t thread_idx) {
    std::vector<size_t>& mine = inline_run ? counts : partial[thread_idx];
    for (size_t i = 0; i < words.size(); ++i) {
      const uint64_t* a = words[i].first;
      const uint64_t* b = words[i].second;
      size_t count = 0;
      if (mask == nullptr) {
        for (size_t w = w0; w < w1; ++w) {
          count += static_cast<size_t>(std::popcount(a[w] & b[w]));
        }
      } else {
        for (size_t w = w0; w < w1; ++w) {
          count += static_cast<size_t>(std::popcount(a[w] & b[w] & mask[w]));
        }
      }
      mine[i] += count;
    }
  });
  for (const auto& mine : partial) {
    for (size_t i = 0; i < counts.size(); ++i) counts[i] += mine[i];
  }
  prober_->engine().NoteBatchAnswered(pairs.size(),
                                      NumShards(options_, num_words));
  return counts;
}

Status BatchProber::EvalBatch(const std::vector<Combination>& frontier,
                              std::vector<KeyBitmap>* out) const {
  out->clear();
  if (frontier.empty()) return Status::OK();
  HYPRE_ASSIGN_OR_RETURN(CompiledFrontier plan, Compile(frontier));
  HYPRE_ASSIGN_OR_RETURN(size_t universe_bits,
                         prober_->engine().UniverseSize());

  out->resize(frontier.size());
  std::vector<uint64_t*> out_words(frontier.size(), nullptr);
  for (size_t i = 0; i < frontier.size(); ++i) {
    // The scalar path leaves an empty combination as a default (0-bit)
    // bitmap; stay byte-identical.
    if (plan.items[i].begin == plan.items[i].end) continue;
    (*out)[i] = KeyBitmap(universe_bits);
    out_words[i] = (*out)[i].word_data();
  }

  size_t num_threads = std::max<size_t>(1, options_.num_threads);
  size_t shard_words = std::max<size_t>(1, options_.shard_words);
  std::vector<std::vector<uint64_t>> group_scratch(
      num_threads, std::vector<uint64_t>(shard_words));
  ForEachShard(plan.num_words, [&](size_t w0, size_t w1, size_t thread_idx) {
    uint64_t* grp = group_scratch[thread_idx].data();
    size_t len = w1 - w0;
    for (size_t i = 0; i < plan.items.size(); ++i) {
      const auto& item = plan.items[i];
      uint64_t* base = out_words[i];
      if (base == nullptr) continue;
      // The output's own shard range is the AND accumulator: first group
      // ORs straight into it, later groups AND in (threads touch disjoint
      // word ranges, so this is race-free).
      uint64_t* dst = base + w0;
      for (uint32_t g = item.begin; g < item.end; ++g) {
        const auto& group = plan.groups[g];
        bool first_group = g == item.begin;
        if (group.end - group.begin == 1) {
          const uint64_t* mw = plan.member_words[group.begin] + w0;
          if (first_group) {
            for (size_t w = 0; w < len; ++w) dst[w] = mw[w];
          } else {
            for (size_t w = 0; w < len; ++w) dst[w] &= mw[w];
          }
          continue;
        }
        const uint64_t* m0 = plan.member_words[group.begin] + w0;
        for (size_t w = 0; w < len; ++w) grp[w] = m0[w];
        for (uint32_t m = group.begin + 1; m < group.end; ++m) {
          const uint64_t* mw = plan.member_words[m] + w0;
          for (size_t w = 0; w < len; ++w) grp[w] |= mw[w];
        }
        if (first_group) {
          for (size_t w = 0; w < len; ++w) dst[w] = grp[w];
        } else {
          for (size_t w = 0; w < len; ++w) dst[w] &= grp[w];
        }
      }
    }
  });
  prober_->engine().NoteBatchAnswered(frontier.size(),
                                      NumShards(options_, plan.num_words));
  return Status::OK();
}

}  // namespace core
}  // namespace hypre
