#include "hypre/batch_prober.h"

#include <algorithm>
#include <bit>
#include <thread>

#include "hypre/parallel/task_pool.h"
#include "hypre/parallel/word_kernels.h"
#include "hypre/telemetry/registry.h"
#include "hypre/telemetry/trace.h"

namespace hypre {
namespace core {

namespace {

/// Shards a kernel pass walks over `num_words` words — the batch-shape unit
/// reported into ProbeStats. Stats stay tile-layout-independent: the same
/// batch reports the same shard count whether it ran inline, split, or
/// work-stolen.
size_t NumShards(const ProbeOptions& options, size_t num_words) {
  size_t shard_words = std::max<size_t>(1, options.shard_words);
  return (num_words + shard_words - 1) / shard_words;
}

/// Combinations per frontier-block tile. Small enough that a big frontier
/// over few shards still fans out (512 combinations / 32 = 16 tiles per
/// shard), large enough that a tile amortizes its scheduling cost.
constexpr size_t kItemTile = 32;

#if HYPRE_TELEMETRY_ENABLED
/// Batch-shape histograms: how many probes a batch call answers and how
/// many shard passes it takes. Once per batch, never per word — the probe
/// inner loops stay untouched.
void RecordBatchShape(size_t batch, size_t shards) {
  static telemetry::Histogram* batch_size =
      telemetry::MetricsRegistry::Global().GetHistogram(
          "hypre_prober_batch_size", "prober",
          "Probes answered per batch kernel call");
  static telemetry::Histogram* shard_passes =
      telemetry::MetricsRegistry::Global().GetHistogram(
          "hypre_prober_shards_per_batch", "prober",
          "Shard passes per batch kernel call");
  batch_size->Record(batch);
  shard_passes->Record(shards);
}
#endif

}  // namespace

Result<BatchProber::CompiledFrontier> BatchProber::Compile(
    const std::vector<Combination>& frontier) const {
  CompiledFrontier compiled;
  // With tombstoned keys in the engine, the live mask joins every non-empty
  // combination as one more single-member AND group, so the shard kernels
  // mask deleted keys out with zero extra code paths — byte-identical to
  // the scalar prober, which ANDs the same mask.
  const uint64_t* mask_words = nullptr;
  if (prober_->engine().has_tombstones()) {
    HYPRE_ASSIGN_OR_RETURN(const KeyBitmap* live,
                           prober_->engine().UniverseBitmap());
    mask_words = live->word_data();
    compiled.num_words = live->num_words();
  }
  for (const auto& combination : frontier) {
    CompiledFrontier::Item item;
    item.begin = static_cast<uint32_t>(compiled.groups.size());
    for (const auto& group : combination.groups) {
      CompiledFrontier::Group g;
      g.begin = static_cast<uint32_t>(compiled.member_words.size());
      for (size_t member : group.members) {
        HYPRE_ASSIGN_OR_RETURN(const KeyBitmap* bits,
                               prober_->PreferenceBits(member));
        compiled.member_words.push_back(bits->word_data());
        compiled.num_words = bits->num_words();
      }
      g.end = static_cast<uint32_t>(compiled.member_words.size());
      compiled.groups.push_back(g);
    }
    if (mask_words != nullptr && !combination.groups.empty()) {
      CompiledFrontier::Group g;
      g.begin = static_cast<uint32_t>(compiled.member_words.size());
      compiled.member_words.push_back(mask_words);
      g.end = static_cast<uint32_t>(compiled.member_words.size());
      compiled.groups.push_back(g);
    }
    item.end = static_cast<uint32_t>(compiled.groups.size());
    compiled.items.push_back(item);
  }
  return compiled;
}

size_t BatchProber::PlanSlots(size_t num_words, size_t num_items) const {
  size_t threads = options_.num_threads;
  if (threads == 0) {
    // Auto-detect: saturate the machine, never oversubscribe it.
    unsigned hw = std::thread::hardware_concurrency();
    threads = hw > 0 ? static_cast<size_t>(hw) : 1;
  }
  if (threads <= 1) return 1;
  size_t shard_words = std::max<size_t>(1, options_.shard_words);
  size_t num_shards = (num_words + shard_words - 1) / shard_words;
  size_t item_tiles = (num_items + kItemTile - 1) / kItemTile;
  // Clamp so every slot can start with at least one tile: no worker range
  // is ever empty, whatever the thread/shard ratio (the num_threads >
  // num_shards regression of the old ceil-division split).
  size_t max_tiles = num_shards * std::max<size_t>(1, item_tiles);
  return std::min(threads, std::max<size_t>(1, max_tiles));
}

BatchProber::TileGrid BatchProber::MakeGrid(size_t num_words,
                                            size_t num_items,
                                            size_t slots) const {
  TileGrid grid;
  grid.shard_words = std::max<size_t>(1, options_.shard_words);
  grid.num_words = num_words;
  grid.num_shards = (num_words + grid.shard_words - 1) / grid.shard_words;
  grid.num_items = num_items;
  if (slots <= 1) {
    // Inline runs keep the frontier whole per shard — the PR 2 loop shape,
    // no tiling overhead.
    grid.item_tile = std::max<size_t>(1, num_items);
  } else {
    grid.item_tile = kItemTile;
  }
  grid.num_item_tiles =
      num_items == 0 ? 0 : (num_items + grid.item_tile - 1) / grid.item_tile;
  return grid;
}

parallel::TaskPool* BatchProber::SchedulePool(size_t slots) const {
  if (slots <= 1 || options_.scheduler != ProbeScheduler::kWorkStealing) {
    return nullptr;
  }
  return options_.pool != nullptr ? options_.pool
                                  : parallel::TaskPool::Shared();
}

template <typename Kernel>
void BatchProber::ForEachTile(const TileGrid& grid, size_t slots,
                              Kernel&& kernel) const {
  size_t num_tiles = grid.num_tiles();
  if (num_tiles == 0) return;
  auto run_tile = [&](size_t t, size_t slot) {
    size_t shard = t / grid.num_item_tiles;
    size_t block = t % grid.num_item_tiles;
    size_t w0 = shard * grid.shard_words;
    size_t w1 = std::min(grid.num_words, w0 + grid.shard_words);
    size_t i0 = block * grid.item_tile;
    size_t i1 = std::min(grid.num_items, i0 + grid.item_tile);
    kernel(w0, w1, i0, i1, slot);
  };

  if (slots <= 1 || num_tiles <= 1) {
    for (size_t t = 0; t < num_tiles; ++t) run_tile(t, 0);
    return;
  }

  if (options_.scheduler == ProbeScheduler::kStaticSplit) {
    // Balanced contiguous split (PartitionRange: sizes differ by at most
    // one, no empty ranges) on per-batch threads; the caller runs part 0.
    size_t parts = std::min(slots, num_tiles);
    std::vector<std::thread> workers;
    workers.reserve(parts - 1);
    for (size_t p = 1; p < parts; ++p) {
      parallel::Range r = parallel::PartitionRange(num_tiles, parts, p);
      workers.emplace_back([&run_tile, r, p] {
        for (size_t t = r.begin; t < r.end; ++t) run_tile(t, p);
      });
    }
    parallel::Range r0 = parallel::PartitionRange(num_tiles, parts, 0);
    for (size_t t = r0.begin; t < r0.end; ++t) run_tile(t, 0);
    for (auto& worker : workers) worker.join();
    return;
  }

  parallel::TaskPool* pool = SchedulePool(slots);
  pool->ParallelFor(num_tiles, options_.grain, slots,
                    [&run_tile](size_t begin, size_t end, size_t slot) {
                      for (size_t t = begin; t < end; ++t) run_tile(t, slot);
                    });
}

Result<std::vector<size_t>> BatchProber::CountBatch(
    const std::vector<Combination>& frontier) const {
  telemetry::TraceSpan span("prober", "count_batch");
  std::vector<size_t> counts(frontier.size(), 0);
  if (frontier.empty()) return counts;
  HYPRE_ASSIGN_OR_RETURN(CompiledFrontier plan, Compile(frontier));
  const parallel::WordKernels& kn = parallel::SelectWordKernels(options_.simd);

  size_t slots = PlanSlots(plan.num_words, frontier.size());
  TileGrid grid = MakeGrid(plan.num_words, frontier.size(), slots);
  size_t shard_words = grid.shard_words;
  // Per-slot scratch: one OR-group buffer and one AND accumulator, each one
  // shard wide, plus a per-slot counts buffer. The kernels stream
  // CONTIGUOUS word runs per member (hoisted pointers) through the word-
  // kernel table. Single-threaded runs accumulate straight into `counts`
  // through reused member scratch (no per-call allocations); parallel runs
  // use per-slot buffers reduced in slot order after the pass — exact
  // commutative sums, so totals are byte-identical for every schedule.
  bool inline_run = slots == 1;
  std::vector<std::vector<size_t>> partial(
      inline_run ? 0 : slots, std::vector<size_t>(frontier.size(), 0));
  std::vector<std::vector<uint64_t>> group_scratch(
      inline_run ? 0 : slots, std::vector<uint64_t>(shard_words));
  std::vector<std::vector<uint64_t>> acc_scratch(
      inline_run ? 0 : slots, std::vector<uint64_t>(shard_words));
  if (inline_run) {
    if (group_word_scratch_.size() < shard_words) {
      group_word_scratch_.resize(shard_words);
      acc_word_scratch_.resize(shard_words);
    }
  }
  ForEachTile(grid, slots,
              [&](size_t w0, size_t w1, size_t i0, size_t i1, size_t slot) {
    std::vector<size_t>& mine = inline_run ? counts : partial[slot];
    uint64_t* grp = inline_run ? group_word_scratch_.data()
                               : group_scratch[slot].data();
    uint64_t* acc = inline_run ? acc_word_scratch_.data()
                               : acc_scratch[slot].data();
    size_t len = w1 - w0;
    for (size_t i = i0; i < i1; ++i) {
      const auto& item = plan.items[i];
      // Empty combination: matches the scalar path's empty bitmap (count 0).
      if (item.begin == item.end) continue;
      // acc_src tracks the current accumulated words; it stays a borrowed
      // member pointer until a second group forces a materialized AND.
      const uint64_t* acc_src = nullptr;
      for (uint32_t g = item.begin; g < item.end; ++g) {
        const auto& group = plan.groups[g];
        const uint64_t* group_src;
        if (group.end - group.begin == 1) {
          group_src = plan.member_words[group.begin] + w0;
        } else {
          kn.copy(grp, plan.member_words[group.begin] + w0, len);
          for (uint32_t m = group.begin + 1; m < group.end; ++m) {
            kn.or_into(grp, plan.member_words[m] + w0, len);
          }
          group_src = grp;
        }
        if (acc_src == nullptr) {
          if (group_src == grp && item.end - item.begin > 1) {
            // grp is overwritten by the next group's OR fold; materialize.
            kn.copy(acc, grp, len);
            acc_src = acc;
          } else {
            acc_src = group_src;
          }
        } else {
          kn.and_to(acc, acc_src, group_src, len);
          acc_src = acc;
        }
      }
      mine[i] += kn.popcount(acc_src, len);
    }
  });
  for (const auto& mine : partial) {
    for (size_t i = 0; i < counts.size(); ++i) counts[i] += mine[i];
  }
  prober_->engine().NoteBatchAnswered(frontier.size(),
                                      NumShards(options_, plan.num_words));
  HYPRE_TELEMETRY_STMT(
      RecordBatchShape(frontier.size(), NumShards(options_, plan.num_words)));
  return counts;
}

Result<std::vector<size_t>> BatchProber::CountMaybeBatched(
    const std::vector<Combination>& frontier) const {
  if (options_.batching) return CountBatch(frontier);
  std::vector<size_t> counts;
  counts.reserve(frontier.size());
  for (const Combination& combination : frontier) {
    HYPRE_ASSIGN_OR_RETURN(size_t count, prober_->Count(combination));
    counts.push_back(count);
  }
  return counts;
}

Result<std::vector<size_t>> BatchProber::CountExtensions(
    const KeyBitmap& base, const std::vector<size_t>& candidates) const {
  telemetry::TraceSpan span("prober", "count_extensions");
  std::vector<size_t> counts(candidates.size(), 0);
  if (candidates.empty()) return counts;
  ptr_scratch_.clear();
  for (size_t candidate : candidates) {
    HYPRE_ASSIGN_OR_RETURN(const KeyBitmap* bits,
                           prober_->PreferenceBits(candidate));
    ptr_scratch_.push_back(bits->word_data());
  }
  const uint64_t* base_words = base.word_data();
  size_t num_words = base.num_words();
  const uint64_t* mask = nullptr;
  if (prober_->engine().has_tombstones()) {
    HYPRE_ASSIGN_OR_RETURN(const KeyBitmap* live,
                           prober_->engine().UniverseBitmap());
    mask = live->word_data();
  }
  const parallel::WordKernels& kn = parallel::SelectWordKernels(options_.simd);

  size_t slots = PlanSlots(num_words, candidates.size());
  TileGrid grid = MakeGrid(num_words, candidates.size(), slots);
  bool inline_run = slots == 1;
  std::vector<std::vector<size_t>> partial(
      inline_run ? 0 : slots, std::vector<size_t>(candidates.size(), 0));
  ForEachTile(grid, slots,
              [&](size_t w0, size_t w1, size_t i0, size_t i1, size_t slot) {
    std::vector<size_t>& mine = inline_run ? counts : partial[slot];
    size_t len = w1 - w0;
    for (size_t i = i0; i < i1; ++i) {
      const uint64_t* cand = ptr_scratch_[i];
      mine[i] += mask == nullptr
                     ? kn.and_count(base_words + w0, cand + w0, len)
                     : kn.and3_count(base_words + w0, cand + w0, mask + w0,
                                     len);
    }
  });
  for (const auto& mine : partial) {
    for (size_t i = 0; i < counts.size(); ++i) counts[i] += mine[i];
  }
  prober_->engine().NoteBatchAnswered(candidates.size(),
                                      NumShards(options_, num_words));
  HYPRE_TELEMETRY_STMT(
      RecordBatchShape(candidates.size(), NumShards(options_, num_words)));
  return counts;
}

Result<std::vector<size_t>> BatchProber::CountPairs(
    const std::vector<std::pair<size_t, size_t>>& pairs) const {
  telemetry::TraceSpan span("prober", "count_pairs");
  std::vector<size_t> counts(pairs.size(), 0);
  if (pairs.empty()) return counts;
  std::vector<std::pair<const uint64_t*, const uint64_t*>> words(pairs.size());
  size_t num_words = 0;
  for (size_t i = 0; i < pairs.size(); ++i) {
    HYPRE_ASSIGN_OR_RETURN(const KeyBitmap* a,
                           prober_->PreferenceBits(pairs[i].first));
    HYPRE_ASSIGN_OR_RETURN(const KeyBitmap* b,
                           prober_->PreferenceBits(pairs[i].second));
    words[i] = {a->word_data(), b->word_data()};
    num_words = a->num_words();
  }
  const uint64_t* mask = nullptr;
  if (prober_->engine().has_tombstones()) {
    HYPRE_ASSIGN_OR_RETURN(const KeyBitmap* live,
                           prober_->engine().UniverseBitmap());
    mask = live->word_data();
  }
  const parallel::WordKernels& kn = parallel::SelectWordKernels(options_.simd);

  size_t slots = PlanSlots(num_words, pairs.size());
  TileGrid grid = MakeGrid(num_words, pairs.size(), slots);
  bool inline_run = slots == 1;
  std::vector<std::vector<size_t>> partial(
      inline_run ? 0 : slots, std::vector<size_t>(pairs.size(), 0));
  ForEachTile(grid, slots,
              [&](size_t w0, size_t w1, size_t i0, size_t i1, size_t slot) {
    std::vector<size_t>& mine = inline_run ? counts : partial[slot];
    size_t len = w1 - w0;
    for (size_t i = i0; i < i1; ++i) {
      const uint64_t* a = words[i].first;
      const uint64_t* b = words[i].second;
      mine[i] += mask == nullptr
                     ? kn.and_count(a + w0, b + w0, len)
                     : kn.and3_count(a + w0, b + w0, mask + w0, len);
    }
  });
  for (const auto& mine : partial) {
    for (size_t i = 0; i < counts.size(); ++i) counts[i] += mine[i];
  }
  prober_->engine().NoteBatchAnswered(pairs.size(),
                                      NumShards(options_, num_words));
  HYPRE_TELEMETRY_STMT(
      RecordBatchShape(pairs.size(), NumShards(options_, num_words)));
  return counts;
}

Status BatchProber::EvalBatch(const std::vector<Combination>& frontier,
                              std::vector<KeyBitmap>* out) const {
  telemetry::TraceSpan span("prober", "eval_batch");
  out->clear();
  if (frontier.empty()) return Status::OK();
  HYPRE_ASSIGN_OR_RETURN(CompiledFrontier plan, Compile(frontier));
  HYPRE_ASSIGN_OR_RETURN(size_t universe_bits,
                         prober_->engine().UniverseSize());
  const parallel::WordKernels& kn = parallel::SelectWordKernels(options_.simd);

  size_t slots = PlanSlots(plan.num_words, frontier.size());
  TileGrid grid = MakeGrid(plan.num_words, frontier.size(), slots);
  // On work-stealing runs the output bitmaps are zeroed in parallel on the
  // pool (first-touch page placement on the workers that fill them).
  parallel::TaskPool* touch_pool = SchedulePool(slots);
  out->resize(frontier.size());
  std::vector<uint64_t*> out_words(frontier.size(), nullptr);
  for (size_t i = 0; i < frontier.size(); ++i) {
    // The scalar path leaves an empty combination as a default (0-bit)
    // bitmap; stay byte-identical.
    if (plan.items[i].begin == plan.items[i].end) continue;
    (*out)[i] = touch_pool != nullptr
                    ? KeyBitmap(universe_bits, touch_pool, slots)
                    : KeyBitmap(universe_bits);
    out_words[i] = (*out)[i].word_data();
  }

  std::vector<std::vector<uint64_t>> group_scratch(
      slots, std::vector<uint64_t>(grid.shard_words));
  ForEachTile(grid, slots,
              [&](size_t w0, size_t w1, size_t i0, size_t i1, size_t slot) {
    uint64_t* grp = group_scratch[slot].data();
    size_t len = w1 - w0;
    for (size_t i = i0; i < i1; ++i) {
      const auto& item = plan.items[i];
      uint64_t* base = out_words[i];
      if (base == nullptr) continue;
      // The output's own shard range is the AND accumulator: first group
      // copies straight into it, later groups AND in (tiles touch disjoint
      // (item, word-range) cells, so this is race-free).
      uint64_t* dst = base + w0;
      for (uint32_t g = item.begin; g < item.end; ++g) {
        const auto& group = plan.groups[g];
        bool first_group = g == item.begin;
        if (group.end - group.begin == 1) {
          const uint64_t* mw = plan.member_words[group.begin] + w0;
          if (first_group) {
            kn.copy(dst, mw, len);
          } else {
            kn.and_into(dst, mw, len);
          }
          continue;
        }
        kn.copy(grp, plan.member_words[group.begin] + w0, len);
        for (uint32_t m = group.begin + 1; m < group.end; ++m) {
          kn.or_into(grp, plan.member_words[m] + w0, len);
        }
        if (first_group) {
          kn.copy(dst, grp, len);
        } else {
          kn.and_into(dst, grp, len);
        }
      }
    }
  });
  prober_->engine().NoteBatchAnswered(frontier.size(),
                                      NumShards(options_, plan.num_words));
  HYPRE_TELEMETRY_STMT(
      RecordBatchShape(frontier.size(), NumShards(options_, plan.num_words)));
  return Status::OK();
}

}  // namespace core
}  // namespace hypre
