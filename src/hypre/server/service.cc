#include "hypre/server/service.h"

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>

#include "common/string_util.h"
#include "hypre/telemetry/registry.h"
#include "hypre/telemetry/telemetry.h"

namespace hypre {
namespace server {

namespace {

#if HYPRE_TELEMETRY_ENABLED
telemetry::Counter* RequestCounter() {
  static telemetry::Counter* c =
      telemetry::MetricsRegistry::Global().GetCounter(
          "hypre_server_requests_total", "server",
          "HTTP requests dispatched to a handler");
  return c;
}

telemetry::Counter* ErrorCounter() {
  static telemetry::Counter* c =
      telemetry::MetricsRegistry::Global().GetCounter(
          "hypre_server_errors_total", "server",
          "HTTP responses with a 4xx/5xx status");
  return c;
}

telemetry::Counter* ShedCounter() {
  static telemetry::Counter* c =
      telemetry::MetricsRegistry::Global().GetCounter(
          "hypre_server_shed_total", "server",
          "Requests shed with 429/503 (admission or writer overload)");
  return c;
}

telemetry::Histogram* HandleLatency() {
  static telemetry::Histogram* h =
      telemetry::MetricsRegistry::Global().GetHistogram(
          "hypre_server_handle_us", "server",
          "Microseconds spent inside a request handler");
  return h;
}
#endif  // HYPRE_TELEMETRY_ENABLED

std::chrono::steady_clock::time_point DeadlinePoint(uint64_t deadline_ms) {
  return std::chrono::steady_clock::now() +
         std::chrono::milliseconds(deadline_ms);
}

/// Milliseconds left before `deadline`, floored at 0.
uint64_t RemainingMs(std::chrono::steady_clock::time_point deadline) {
  auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline - std::chrono::steady_clock::now());
  return left.count() > 0 ? static_cast<uint64_t>(left.count()) : 0;
}

}  // namespace

int HttpStatusForCode(StatusCode code) {
  switch (code) {
    case StatusCode::kInvalidArgument:
    case StatusCode::kParseError:
    case StatusCode::kOutOfRange:
      return 400;
    case StatusCode::kNotFound:
      return 404;
    case StatusCode::kAlreadyExists:
    case StatusCode::kConflict:
      return 409;
    case StatusCode::kUnavailable:
      return 429;
    case StatusCode::kNotImplemented:
      return 501;
    default:
      return 500;
  }
}

HttpResponse Service::ErrorResponse(int http_status, const Status& status) {
  HttpResponse response;
  response.status = http_status;
  response.body = EncodeError(http_status, status);
  if (http_status == 429 || http_status == 503) {
    // The shed is transient by construction (queue full / deadline spent);
    // a short client backoff is the right hint.
    response.headers.emplace_back("Retry-After", "1");
  }
  return response;
}

uint64_t Service::ResolveDeadlineMs(const HttpRequest& request,
                                    uint64_t body_deadline_ms) const {
  uint64_t deadline = body_deadline_ms;
  if (const std::string* header = request.FindHeader("x-hypre-deadline-ms")) {
    uint64_t value = 0;
    bool numeric = !header->empty();
    for (char c : *header) {
      if (c < '0' || c > '9') {
        numeric = false;
        break;
      }
      value = value * 10 + static_cast<uint64_t>(c - '0');
    }
    if (numeric && value > 0 && (deadline == 0 || value < deadline)) {
      deadline = value;
    }
  }
  if (options_.default_deadline_ms > 0 &&
      (deadline == 0 || options_.default_deadline_ms < deadline)) {
    deadline = options_.default_deadline_ms;
  }
  return deadline;
}

HttpResponse Service::Handle(const HttpRequest& request) {
#if HYPRE_TELEMETRY_ENABLED
  RequestCounter()->Increment();
  const auto started = std::chrono::steady_clock::now();
#endif
  HttpResponse response = [&]() -> HttpResponse {
    if (request.path == "/healthz") {
      if (request.method != "GET") {
        return ErrorResponse(
            405, Status::InvalidArgument("/healthz accepts GET only"));
      }
      return HandleHealth();
    }
    if (request.path == "/metrics") {
      if (request.method != "GET") {
        return ErrorResponse(
            405, Status::InvalidArgument("/metrics accepts GET only"));
      }
      return HandleMetrics();
    }
    // /v1/{tenant}/{action}
    std::vector<std::string> parts = Split(request.path, '/');
    // A leading '/' yields an empty first field.
    if (parts.size() != 4 || !parts[0].empty() || parts[1] != "v1" ||
        parts[2].empty()) {
      return ErrorResponse(
          404, Status::NotFound("no route for '" + request.path + "'"));
    }
    const std::string& tenant_name = parts[2];
    const std::string& action = parts[3];
    if (action != "enumerate" && action != "mutate" && action != "stats") {
      return ErrorResponse(
          404, Status::NotFound("no route for '" + request.path + "'"));
    }
    Result<std::shared_ptr<Tenant>> tenant = tenants_->Get(tenant_name);
    if (!tenant.ok()) {
      return ErrorResponse(HttpStatusForCode(tenant.status().code()),
                           tenant.status());
    }
    if (action == "enumerate") {
      if (request.method != "POST") {
        return ErrorResponse(
            405, Status::InvalidArgument("enumerate accepts POST only"));
      }
      return HandleEnumerate(tenant->get(), request);
    }
    if (action == "mutate") {
      if (request.method != "POST") {
        return ErrorResponse(
            405, Status::InvalidArgument("mutate accepts POST only"));
      }
      return HandleMutate(tenant->get(), request);
    }
    if (request.method != "GET") {
      return ErrorResponse(405,
                           Status::InvalidArgument("stats accepts GET only"));
    }
    return HandleStats(tenant->get());
  }();
#if HYPRE_TELEMETRY_ENABLED
  HandleLatency()->Record(static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - started)
          .count()));
  if (response.status >= 400) ErrorCounter()->Increment();
  if (response.status == 429 || response.status == 503) {
    ShedCounter()->Increment();
  }
#endif
  return response;
}

HttpResponse Service::HandleEnumerate(Tenant* tenant,
                                      const HttpRequest& request) {
  Result<DecodedEnumerate> decoded = DecodeEnumerateRequest(request.body);
  if (!decoded.ok()) {
    return ErrorResponse(HttpStatusForCode(decoded.status().code()),
                         decoded.status());
  }
  api::EnumerationRequest& enumerate = decoded->request;
  api::Session* session = tenant->session();

  const uint64_t deadline_ms = ResolveDeadlineMs(request, decoded->deadline_ms);
  std::optional<std::chrono::steady_clock::time_point> deadline;
  if (deadline_ms > 0) deadline = DeadlinePoint(deadline_ms);

  if (options_.enable_debug && decoded->debug_sleep_ms > 0) {
    // Synthetic latency held INSIDE the admission window: the sleep fires
    // on the first emitted record/tuple, while the request's admission
    // ticket is live — how the tests and CI saturate the queue on purpose.
    auto slept = std::make_shared<std::atomic<bool>>(false);
    const uint64_t sleep_ms = decoded->debug_sleep_ms;
    auto nap = [slept, sleep_ms] {
      if (!slept->exchange(true)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
      }
    };
    enumerate.record_sink = [nap](const core::CombinationRecord&) { nap(); };
    enumerate.tuple_sink = [nap](const core::RankedTuple&) { nap(); };
  }

  // Refresh split: the journal drain reads base tables, so it belongs to
  // the single writer. Run it there, then re-enter as a pure read — the
  // epoch the read pins is at least as fresh as the drain just made it.
  if (enumerate.refresh) {
    Status refreshed = tenant->ExecuteWrite(
        [session] { return session->Refresh().status(); }, deadline);
    if (!refreshed.ok()) {
      return ErrorResponse(HttpStatusForCode(refreshed.code()), refreshed);
    }
    enumerate.refresh = false;
  }

  if (deadline.has_value()) {
    const uint64_t remaining = RemainingMs(*deadline);
    if (remaining == 0) {
      return ErrorResponse(
          429, Status::Unavailable(
                   "deadline spent before the read could be admitted"));
    }
    enumerate.admission_timeout_ms = remaining;
  }

  Result<api::EnumerationResult> result = session->Enumerate(enumerate);
  if (!result.ok()) {
    return ErrorResponse(HttpStatusForCode(result.status().code()),
                         result.status());
  }
  HttpResponse response;
  response.body = EncodeEnumerationResult(enumerate.algorithm, *result);
  return response;
}

HttpResponse Service::HandleMutate(Tenant* tenant,
                                   const HttpRequest& request) {
  Result<DecodedMutate> decoded = DecodeMutateRequest(request.body);
  if (!decoded.ok()) {
    return ErrorResponse(HttpStatusForCode(decoded.status().code()),
                         decoded.status());
  }
  const uint64_t deadline_ms = ResolveDeadlineMs(request, 0);
  std::optional<std::chrono::steady_clock::time_point> deadline;
  if (deadline_ms > 0) deadline = DeadlinePoint(deadline_ms);

  api::Session* session = tenant->session();
  size_t applied = 0;
  bool committed = false;
  uint64_t sequence = 0;
  Status status = tenant->ExecuteWrite(
      [&]() -> Status {
        reldb::Database* db = session->mutable_db();
        if (db == nullptr) {
          return Status::Internal(
              "tenant session does not own its database; mutations are "
              "disabled");
        }
        for (MutationOp& op : decoded->ops) {
          reldb::Table* table = db->GetTable(op.table);
          if (table == nullptr) {
            return Status::NotFound("unknown table '" + op.table + "'");
          }
          if (op.kind == MutationOp::Kind::kAppend) {
            HYPRE_RETURN_NOT_OK(table->Append(std::move(op.row)));
          } else {
            HYPRE_RETURN_NOT_OK(table->Delete(op.row_id));
          }
          ++applied;
        }
        if (decoded->commit && session->has_storage()) {
          HYPRE_RETURN_NOT_OK(session->CommitJournal());
          committed = true;
        }
        // Captured on the writer thread: reading it after ExecuteWrite
        // returns would race with the next queued mutation.
        sequence = db->journal().sequence();
        return Status::OK();
      },
      deadline);
  if (!status.ok()) {
    return ErrorResponse(HttpStatusForCode(status.code()), status);
  }
  Json body = Json::Object();
  body.Set("applied", Json::Int(static_cast<int64_t>(applied)));
  body.Set("committed", Json::Bool(committed));
  body.Set("journal_sequence", Json::Int(static_cast<int64_t>(sequence)));
  HttpResponse response;
  response.body = body.Dump();
  return response;
}

HttpResponse Service::HandleStats(Tenant* tenant) {
  api::Session* session = tenant->session();
  const api::AdmissionScheduler::Stats sched = session->scheduler().stats();

  Json scheduler = Json::Object();
  scheduler.Set("admitted", Json::Int(static_cast<int64_t>(sched.admitted)));
  scheduler.Set("waited", Json::Int(static_cast<int64_t>(sched.waited)));
  scheduler.Set("rejected", Json::Int(static_cast<int64_t>(sched.rejected)));
  scheduler.Set("inflight", Json::Int(static_cast<int64_t>(sched.inflight)));
  scheduler.Set("queue_depth",
                Json::Int(static_cast<int64_t>(sched.queue_depth)));

  Json writer = Json::Object();
  writer.Set("executed",
             Json::Int(static_cast<int64_t>(tenant->writes_executed())));
  writer.Set("shed", Json::Int(static_cast<int64_t>(tenant->writes_shed())));

  // Base-table reads belong to the WRITE side of the session contract
  // (no epoch pin protects them), so the row counts are collected on the
  // tenant's writer thread, serialized with any in-flight mutation.
  Json tables = Json::Object();
  Status scan = tenant->ExecuteWrite([&]() -> Status {
    for (const std::string& name : session->db()->TableNames()) {
      tables.Set(name,
                 Json::Int(static_cast<int64_t>(
                     session->db()->GetTable(name)->num_live_rows())));
    }
    return Status::OK();
  });
  if (!scan.ok()) {
    return ErrorResponse(HttpStatusForCode(scan.code()), scan);
  }

  Json body = Json::Object();
  body.Set("tenant", Json::Str(tenant->name()));
  body.Set("scheduler", std::move(scheduler));
  body.Set("writer", std::move(writer));
  body.Set("engines",
           Json::Int(static_cast<int64_t>(session->num_cached_engines())));
  body.Set("storage", Json::Bool(session->has_storage()));
  body.Set("tables", std::move(tables));
  HttpResponse response;
  response.body = body.Dump();
  return response;
}

HttpResponse Service::HandleMetrics() {
  HttpResponse response;
  response.content_type = "text/plain; version=0.0.4; charset=utf-8";
#if HYPRE_TELEMETRY_ENABLED
  response.body = telemetry::MetricsRegistry::Global().ToPrometheusText();
#else
  response.body = "# hypre telemetry compiled out (-DHYPRE_TELEMETRY=OFF)\n";
#endif
  return response;
}

HttpResponse Service::HandleHealth() {
  Json tenants = Json::Array();
  for (const std::string& name : tenants_->TenantNames()) {
    tenants.Append(Json::Str(name));
  }
  Json body = Json::Object();
  body.Set("status", Json::Str("ok"));
  body.Set("tenants", std::move(tenants));
  body.Set("open", Json::Int(static_cast<int64_t>(tenants_->num_open())));
  HttpResponse response;
  response.body = body.Dump();
  return response;
}

}  // namespace server
}  // namespace hypre
