// The HTTP server: listener, worker pool, connection lifecycle, and
// graceful stop.
//
//   HttpServer::Start
//     bind + listen (port 0 = kernel-assigned; port() reports it)
//     N worker threads, each looping: accept -> serve connection
//       serve: ReadHttpRequest -> Service::Handle -> write response,
//              keep-alive until close/error/timeout
//   HttpServer::Stop
//     stop accepting (listener shutdown(2); workers unblock), wake idle
//     keep-alive connections (shutdown(2) on their sockets), join
//     workers — every IN-FLIGHT request finishes and its response is
//     written before the worker exits. Tenant draining/checkpointing is
//     the owner's job (TenantManager::ShutdownAll), not the transport's.
//
// Workers block in accept(2) directly (no separate acceptor thread, no
// handoff queue): the kernel's accept queue IS the connection queue, and
// its backlog bound plus the per-tenant admission/writer bounds are the
// system's load shedding — a connection the workers never reach times out
// client-side rather than occupying server memory.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "hypre/server/http.h"
#include "hypre/server/service.h"

namespace hypre {
namespace server {

struct HttpServerOptions {
  /// Listen address. The default binds loopback only — this server has no
  /// auth; exposing it wider is an explicit operator decision.
  std::string host = "127.0.0.1";
  /// 0 = kernel-assigned (tests); port() returns the bound port.
  uint16_t port = 0;
  /// Worker threads = max concurrently served connections.
  size_t num_workers = 4;
  /// listen(2) backlog: connections queued in the kernel awaiting a worker.
  int backlog = 64;
  HttpLimits limits;
};

class HttpServer {
 public:
  /// `service` must outlive the server.
  HttpServer(Service* service, HttpServerOptions options)
      : service_(service), options_(std::move(options)) {}
  ~HttpServer() { Stop(); }

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// \brief Binds, listens, and launches the workers. Fails on an
  /// unbindable address; idempotent-hostile (call once).
  Status Start();

  /// \brief Graceful stop: no new connections, in-flight requests finish,
  /// workers join. Idempotent; also run by the destructor.
  void Stop();

  /// \brief The bound port (after Start; resolves port 0).
  uint16_t port() const { return port_; }
  bool running() const { return running_.load(std::memory_order_acquire); }
  /// \brief Requests served to completion (response written).
  uint64_t requests_served() const {
    return served_.load(std::memory_order_relaxed);
  }

 private:
  void WorkerMain();
  /// Serves one connection until close/error/idle-timeout/stop.
  void ServeConnection(int fd);

  Service* service_;
  const HttpServerOptions options_;

  /// Atomic because workers read it for accept(2) while Stop() is tearing
  /// down. Stop() only shutdown(2)s it to unblock them; the close happens
  /// after the workers join, so the fd number cannot be recycled under a
  /// racing accept call.
  std::atomic<int> listen_fd_{-1};
  uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<uint64_t> served_{0};
  std::vector<std::thread> workers_;
  /// Sockets currently being served, so Stop() can shutdown(2) idle
  /// keep-alive connections parked in poll.
  std::mutex conns_mu_;
  std::vector<int> active_fds_;
};

}  // namespace server
}  // namespace hypre
