#include "hypre/server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

namespace hypre {
namespace server {

Status HttpServer::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return Status::Conflict("server already running");
  }
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("host must be a numeric IPv4 address: " +
                                   options_.host);
  }
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    Status st = Status::Internal("bind " + options_.host + ":" +
                                 std::to_string(options_.port) + ": " +
                                 std::strerror(errno));
    ::close(fd);
    return st;
  }
  if (::listen(fd, options_.backlog) != 0) {
    Status st = Status::Internal(std::string("listen: ") +
                                 std::strerror(errno));
    ::close(fd);
    return st;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr), &len) !=
      0) {
    Status st = Status::Internal(std::string("getsockname: ") +
                                 std::strerror(errno));
    ::close(fd);
    return st;
  }
  port_ = ntohs(addr.sin_port);
  listen_fd_.store(fd, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  workers_.reserve(options_.num_workers);
  for (size_t i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back([this] { WorkerMain(); });
  }
  return Status::OK();
}

void HttpServer::Stop() {
  if (!running_.exchange(false)) return;
  // shutdown(2) — NOT close — unblocks every worker's accept(2) with an
  // error while keeping the fd number valid; closing here could let the
  // kernel recycle it under a worker that is just entering accept. The
  // close happens after the joins, when no worker can touch it.
  const int listener = listen_fd_.load(std::memory_order_acquire);
  if (listener >= 0) ::shutdown(listener, SHUT_RDWR);
  {
    // Idle keep-alive connections are parked in poll; a read-shutdown
    // makes them readable with EOF, which serve treats as a clean close.
    // A connection mid-request is unaffected: shutdown(SHUT_RD) does not
    // discard already-received bytes, and the response write still runs.
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (int fd : active_fds_) ::shutdown(fd, SHUT_RD);
  }
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  if (listener >= 0) ::close(listener);
  listen_fd_.store(-1, std::memory_order_release);
}

void HttpServer::WorkerMain() {
  while (running_.load(std::memory_order_acquire)) {
    struct sockaddr_in peer;
    socklen_t len = sizeof(peer);
    int fd = ::accept(listen_fd_.load(std::memory_order_acquire),
                      reinterpret_cast<struct sockaddr*>(&peer), &len);
    if (fd < 0) {
      if (errno == EINTR) continue;
      // Listener closed (Stop) or transient error; re-check and move on.
      if (!running_.load(std::memory_order_acquire)) return;
      continue;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      active_fds_.push_back(fd);
    }
    ServeConnection(fd);
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      active_fds_.erase(
          std::find(active_fds_.begin(), active_fds_.end(), fd));
    }
    ::close(fd);
  }
}

void HttpServer::ServeConnection(int fd) {
  for (;;) {
    Result<ReadRequestOutcome> outcome = ReadHttpRequest(fd, options_.limits);
    if (!outcome.ok()) return;  // transport failure: nothing sane to send
    if (outcome->closed) return;
    if (outcome->error_status != 0) {
      HttpResponse response = Service::ErrorResponse(
          outcome->error_status, Status::ParseError(outcome->error));
      (void)WriteAllToSocket(
          fd, SerializeHttpResponse(response, /*keep_alive=*/false));
      return;
    }
    const bool keep_alive = !outcome->request.WantsClose() &&
                            running_.load(std::memory_order_acquire);
    HttpResponse response = service_->Handle(outcome->request);
    if (!WriteAllToSocket(fd, SerializeHttpResponse(response, keep_alive))
             .ok()) {
      return;
    }
    served_.fetch_add(1, std::memory_order_relaxed);
    if (!keep_alive) return;
  }
}

}  // namespace server
}  // namespace hypre
