#include "hypre/server/codec.h"

#include "sqlparse/select_parser.h"

namespace hypre {
namespace server {

namespace {

/// Optional non-negative integer field; `out` untouched when absent.
Status ReadOptionalUint(const Json& body, const std::string& key,
                        uint64_t* out) {
  const Json* field = body.Find(key);
  if (field == nullptr) return Status::OK();
  if (field->kind() != Json::Kind::kInt || field->AsInt() < 0) {
    return Status::InvalidArgument("field '" + key +
                                   "' must be a non-negative integer");
  }
  *out = static_cast<uint64_t>(field->AsInt());
  return Status::OK();
}

Status ReadOptionalBool(const Json& body, const std::string& key, bool* out) {
  const Json* field = body.Find(key);
  if (field == nullptr) return Status::OK();
  if (field->kind() != Json::Kind::kBool) {
    return Status::InvalidArgument("field '" + key + "' must be a boolean");
  }
  *out = field->AsBool();
  return Status::OK();
}

Result<double> ReadNumber(const Json& object, const std::string& key,
                          const std::string& context) {
  const Json* field = object.Find(key);
  if (field == nullptr || (field->kind() != Json::Kind::kInt &&
                           field->kind() != Json::Kind::kDouble)) {
    return Status::InvalidArgument(context + ": field '" + key +
                                   "' must be a number");
  }
  return field->AsDouble();
}

}  // namespace

Result<DecodedEnumerate> DecodeEnumerateRequest(const std::string& body) {
  HYPRE_ASSIGN_OR_RETURN(Json root, Json::Parse(body, "enumerate request"));
  if (root.kind() != Json::Kind::kObject) {
    return Status::InvalidArgument(
        "enumerate request body must be a JSON object");
  }
  DecodedEnumerate decoded;
  api::EnumerationRequest& request = decoded.request;

  HYPRE_ASSIGN_OR_RETURN(request.algorithm,
                         root.GetString("algorithm", "enumerate request"));
  HYPRE_ASSIGN_OR_RETURN(std::string base_sql,
                         root.GetString("base_query", "enumerate request"));
  HYPRE_ASSIGN_OR_RETURN(sqlparse::SelectStatement stmt,
                         sqlparse::ParseSelect(base_sql));
  if (stmt.count_distinct) {
    return Status::InvalidArgument(
        "base_query must be a plain SELECT (no COUNT(DISTINCT ...))");
  }
  request.base_query = stmt.query;
  HYPRE_ASSIGN_OR_RETURN(request.key_column,
                         root.GetString("key_column", "enumerate request"));

  HYPRE_ASSIGN_OR_RETURN(const Json* preferences,
                         root.GetArray("preferences", "enumerate request"));
  if (preferences->size() == 0) {
    return Status::InvalidArgument(
        "enumerate request: 'preferences' must not be empty");
  }
  for (size_t i = 0; i < preferences->size(); ++i) {
    const Json& entry = preferences->at(i);
    const std::string context = "preferences[" + std::to_string(i) + "]";
    if (entry.kind() != Json::Kind::kObject) {
      return Status::InvalidArgument(context + " must be an object");
    }
    HYPRE_ASSIGN_OR_RETURN(std::string predicate,
                           entry.GetString("predicate", context));
    HYPRE_ASSIGN_OR_RETURN(double intensity,
                           ReadNumber(entry, "intensity", context));
    HYPRE_ASSIGN_OR_RETURN(core::PreferenceAtom atom,
                           core::MakeAtom(predicate, intensity));
    request.preferences.push_back(std::move(atom));
  }

  uint64_t k = 0;
  HYPRE_RETURN_NOT_OK(ReadOptionalUint(root, "k", &k));
  request.k = static_cast<size_t>(k);
  uint64_t max_exhaustive_n = request.max_exhaustive_n;
  HYPRE_RETURN_NOT_OK(
      ReadOptionalUint(root, "max_exhaustive_n", &max_exhaustive_n));
  request.max_exhaustive_n = static_cast<size_t>(max_exhaustive_n);
  uint64_t probe_budget = 0;
  HYPRE_RETURN_NOT_OK(ReadOptionalUint(root, "probe_budget", &probe_budget));
  request.probe_budget = static_cast<size_t>(probe_budget);
  HYPRE_RETURN_NOT_OK(ReadOptionalUint(root, "seed", &request.seed));
  HYPRE_RETURN_NOT_OK(ReadOptionalBool(root, "refresh", &request.refresh));
  HYPRE_RETURN_NOT_OK(
      ReadOptionalUint(root, "deadline_ms", &decoded.deadline_ms));
  HYPRE_RETURN_NOT_OK(
      ReadOptionalUint(root, "debug_sleep_ms", &decoded.debug_sleep_ms));

  if (const Json* semantics = root.Find("semantics")) {
    if (semantics->kind() != Json::Kind::kString) {
      return Status::InvalidArgument("field 'semantics' must be a string");
    }
    const std::string& s = semantics->AsString();
    if (s == "and") {
      request.semantics = core::CombineSemantics::kAnd;
    } else if (s == "and-or") {
      request.semantics = core::CombineSemantics::kAndOr;
    } else {
      return Status::InvalidArgument("unknown semantics '" + s +
                                     "' (expected \"and\" or \"and-or\")");
    }
  }
  if (const Json* mode = root.Find("mode")) {
    if (mode->kind() != Json::Kind::kString) {
      return Status::InvalidArgument("field 'mode' must be a string");
    }
    const std::string& m = mode->AsString();
    if (m == "complete") {
      request.mode = core::PepsMode::kComplete;
    } else if (m == "approximate") {
      request.mode = core::PepsMode::kApproximate;
    } else {
      return Status::InvalidArgument(
          "unknown mode '" + m + "' (expected \"complete\" or \"approximate\")");
    }
  }
  return decoded;
}

Json ValueToJson(const reldb::Value& value) {
  switch (value.type()) {
    case reldb::ValueType::kNull: return Json::Null();
    case reldb::ValueType::kInt64: return Json::Int(value.AsInt());
    case reldb::ValueType::kDouble: return Json::Double(value.AsDouble());
    case reldb::ValueType::kString: return Json::Str(value.AsString());
  }
  return Json::Null();
}

std::string EncodeEnumerationResult(const std::string& algorithm,
                                    const api::EnumerationResult& result) {
  Json root = Json::Object();
  root.Set("algorithm", Json::Str(algorithm));
  root.Set("epoch", Json::Int(static_cast<int64_t>(result.epoch)));
  root.Set("truncated", Json::Bool(result.truncated));

  Json records = Json::Array();
  for (const core::CombinationRecord& record : result.records) {
    Json r = Json::Object();
    r.Set("predicate_sql", Json::Str(record.predicate_sql));
    r.Set("intensity", Json::Double(record.intensity));
    r.Set("num_predicates",
          Json::Int(static_cast<int64_t>(record.num_predicates)));
    r.Set("num_tuples", Json::Int(static_cast<int64_t>(record.num_tuples)));
    records.Append(std::move(r));
  }
  root.Set("records", std::move(records));

  Json top_k = Json::Array();
  for (const core::RankedTuple& tuple : result.top_k) {
    Json t = Json::Object();
    t.Set("key", ValueToJson(tuple.key));
    t.Set("intensity", Json::Double(tuple.intensity));
    top_k.Append(std::move(t));
  }
  root.Set("top_k", std::move(top_k));

  Json stats = Json::Object();
  stats.Set("leaf_queries",
            Json::Int(static_cast<int64_t>(result.stats.num_leaf_queries)));
  stats.Set("cache_hits",
            Json::Int(static_cast<int64_t>(result.stats.num_cache_hits)));
  stats.Set("batches",
            Json::Int(static_cast<int64_t>(result.stats.num_batches)));
  stats.Set("batched_probes",
            Json::Int(static_cast<int64_t>(result.stats.num_batched_probes)));
  stats.Set("shard_passes",
            Json::Int(static_cast<int64_t>(result.stats.num_shard_passes)));
  root.Set("stats", std::move(stats));

  root.Set("valid_checks",
           Json::Int(static_cast<int64_t>(result.valid_checks)));
  root.Set("invalid_checks",
           Json::Int(static_cast<int64_t>(result.invalid_checks)));
  return root.Dump();
}

Result<DecodedMutate> DecodeMutateRequest(const std::string& body) {
  HYPRE_ASSIGN_OR_RETURN(Json root, Json::Parse(body, "mutate request"));
  if (root.kind() != Json::Kind::kObject) {
    return Status::InvalidArgument("mutate request body must be a JSON object");
  }
  DecodedMutate decoded;
  HYPRE_RETURN_NOT_OK(ReadOptionalBool(root, "commit", &decoded.commit));
  HYPRE_ASSIGN_OR_RETURN(const Json* ops,
                         root.GetArray("ops", "mutate request"));
  if (ops->size() == 0) {
    return Status::InvalidArgument("mutate request: 'ops' must not be empty");
  }
  for (size_t i = 0; i < ops->size(); ++i) {
    const Json& entry = ops->at(i);
    const std::string context = "ops[" + std::to_string(i) + "]";
    if (entry.kind() != Json::Kind::kObject) {
      return Status::InvalidArgument(context + " must be an object");
    }
    MutationOp op;
    HYPRE_ASSIGN_OR_RETURN(std::string kind, entry.GetString("op", context));
    HYPRE_ASSIGN_OR_RETURN(op.table, entry.GetString("table", context));
    if (kind == "append") {
      op.kind = MutationOp::Kind::kAppend;
      HYPRE_ASSIGN_OR_RETURN(const Json* row, entry.GetArray("row", context));
      for (size_t c = 0; c < row->size(); ++c) {
        const Json& cell = row->at(c);
        switch (cell.kind()) {
          case Json::Kind::kNull:
            op.row.push_back(reldb::Value::Null());
            break;
          case Json::Kind::kInt:
            op.row.push_back(reldb::Value::Int(cell.AsInt()));
            break;
          case Json::Kind::kDouble:
            op.row.push_back(reldb::Value::Real(cell.AsDouble()));
            break;
          case Json::Kind::kString:
            op.row.push_back(reldb::Value::Str(cell.AsString()));
            break;
          default:
            return Status::InvalidArgument(
                context + ".row[" + std::to_string(c) +
                "]: cells must be null, number, or string");
        }
      }
    } else if (kind == "delete") {
      op.kind = MutationOp::Kind::kDelete;
      HYPRE_ASSIGN_OR_RETURN(int64_t row_id, entry.GetInt("row_id", context));
      if (row_id < 0) {
        return Status::InvalidArgument(context + ".row_id must be >= 0");
      }
      op.row_id = static_cast<reldb::RowId>(row_id);
    } else {
      return Status::InvalidArgument(context + ": unknown op '" + kind +
                                     "' (expected \"append\" or \"delete\")");
    }
    decoded.ops.push_back(std::move(op));
  }
  return decoded;
}

std::string EncodeError(int http_status, const Status& status) {
  Json error = Json::Object();
  error.Set("status", Json::Int(http_status));
  error.Set("code", Json::Str(StatusCodeToString(status.code())));
  error.Set("message", Json::Str(status.message()));
  Json root = Json::Object();
  root.Set("error", std::move(error));
  return root.Dump();
}

}  // namespace server
}  // namespace hypre
