// Minimal dependency-free HTTP/1.1 framing over POSIX sockets.
//
// Just enough of RFC 7230 for the REST front end: request-line + headers +
// Content-Length bodies, keep-alive by default, everything else rejected
// with a clear status. Deliberately NOT a general web server — no chunked
// transfer, no TLS, no pipelining of a second request before the first
// response. The parser is strict and bounded (header and body byte caps,
// a per-read idle timeout) so a slow or malicious client cannot pin a
// worker or balloon memory: the same fail-closed posture the storage
// formats take, applied at the network edge.
//
// Split from server.h so the framing is testable without sockets
// (ParseRequestHead works on a byte buffer) and reusable by the bench's
// tiny client.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace hypre {
namespace server {

/// \brief One parsed request. Header names are stored lower-cased (HTTP
/// headers are case-insensitive); values are trimmed.
struct HttpRequest {
  std::string method;   // "GET", "POST", ... (upper-case as sent)
  std::string target;   // original request target, e.g. "/v1/t/stats?x=1"
  std::string path;     // target up to '?'
  std::string query;    // after '?', may be empty
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  /// \brief Case-insensitively looked-up header value, or nullptr.
  const std::string* FindHeader(const std::string& lower_name) const;
  /// \brief True when the client asked to close after this response.
  bool WantsClose() const;
};

/// \brief One response to serialize. `headers` are extras (Retry-After,
/// ...); Content-Type/Content-Length/Connection are emitted automatically.
struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
  std::vector<std::pair<std::string, std::string>> headers;
};

/// \brief Canonical reason phrase ("OK", "Too Many Requests", ...).
const char* HttpStatusReason(int status);

/// \brief Parser/transport bounds. The defaults keep one connection under
/// ~8 MiB of buffered input and bound how long a worker waits on a socket.
struct HttpLimits {
  size_t max_header_bytes = 64 * 1024;
  size_t max_body_bytes = 8 * 1024 * 1024;
  /// Per-poll read timeout while a request is in flight; also the idle
  /// keep-alive timeout between requests. Milliseconds.
  int read_timeout_ms = 30000;
};

/// \brief Outcome of reading one request off a connection.
struct ReadRequestOutcome {
  /// Clean end of stream before any request byte (keep-alive close).
  bool closed = false;
  /// When != 0 the input was unusable; send this status and close. The
  /// message explains why (logged, and echoed in the error body).
  int error_status = 0;
  std::string error;
  HttpRequest request;  // valid iff !closed && error_status == 0
};

/// \brief Blocking read of one full request from `fd` under `limits`.
/// Returns a transport Status error only for unexpected socket failures;
/// protocol problems come back as error_status (400/408/413/431/501).
Result<ReadRequestOutcome> ReadHttpRequest(int fd, const HttpLimits& limits);

/// \brief Parses request-line + headers from `head` (everything before the
/// blank line, which must be included). Exposed for fuzz-ish unit tests.
/// On success fills `request` (body untouched) and returns the
/// Content-Length (0 when absent). Protocol errors return non-OK with the
/// HTTP status to send in `error_status_out`.
Result<size_t> ParseRequestHead(const std::string& head, HttpRequest* request,
                                int* error_status_out);

/// \brief Serializes `response` with Content-Length framing.
std::string SerializeHttpResponse(const HttpResponse& response,
                                  bool keep_alive);

/// \brief Writes all of `data` to `fd`, retrying short writes.
Status WriteAllToSocket(int fd, const std::string& data);

/// \brief Tiny blocking HTTP client for tests and the serving bench: sends
/// one request on an already-connected socket and reads one full response.
struct SimpleHttpReply {
  int status = 0;
  std::vector<std::pair<std::string, std::string>> headers;  // lower-cased
  std::string body;
};
Result<SimpleHttpReply> SendHttpRequest(int fd, const std::string& method,
                                        const std::string& target,
                                        const std::string& body,
                                        const std::vector<std::pair<std::string, std::string>>& extra_headers = {});

/// \brief Connects a TCP socket to host:port (numeric IPv4 host). The
/// caller owns the returned fd.
Result<int> ConnectTcp(const std::string& host, uint16_t port,
                       int timeout_ms = 5000);

}  // namespace server
}  // namespace hypre
