// JSON wire codec for the REST front end.
//
// One translation layer between the HTTP bodies and the api:: types, kept
// separate from routing so the encoding is directly testable — and so the
// e2e differential test (tests/test_http_server.cc) can run a DIRECT
// Session::Enumerate through the same encoder and demand byte-identical
// output from the served path. Decoding is fail-closed on top of the strict
// hypre::Json parser: unknown algorithm names, missing fields, and
// wrong-typed values all come back as InvalidArgument with the field named,
// which the service maps to 400.
//
// Wire shapes (see docs/server_api.md for the full reference):
//
//   enumerate request  {"algorithm", "base_query" (SQL), "key_column",
//                       "preferences": [{"predicate", "intensity"}, ...],
//                       "k"?, "semantics"?, "mode"?, "seed"?,
//                       "max_exhaustive_n"?, "probe_budget"?, "refresh"?,
//                       "deadline_ms"?, "debug_sleep_ms"?}
//   enumerate response {"algorithm", "epoch", "truncated",
//                       "records": [...], "top_k": [...], "stats": {...},
//                       "valid_checks"?, "invalid_checks"?}
//   mutate request     {"ops": [{"op":"append","table","row":[...]} |
//                               {"op":"delete","table","row_id"}],
//                       "commit"?}
//   error response     {"error": {"status", "code", "message"}}
#pragma once

#include <string>

#include "common/json.h"
#include "common/status.h"
#include "hypre/api/enumeration.h"
#include "reldb/database.h"

namespace hypre {
namespace server {

/// \brief A decoded enumerate body: the api request plus the server-level
/// knobs that ride alongside it in the JSON.
struct DecodedEnumerate {
  api::EnumerationRequest request;
  /// End-to-end deadline from "deadline_ms" (or the X-Hypre-Deadline-Ms
  /// header, which the service applies before decoding). 0 = none. Mapped
  /// onto EnumerationRequest::admission_timeout_ms by the service.
  uint64_t deadline_ms = 0;
  /// Debug-only synthetic latency injected inside the admission window
  /// (ignored unless the server runs with debug endpoints enabled). Lets
  /// tests and CI saturate the admission queue deterministically.
  uint64_t debug_sleep_ms = 0;
};

/// \brief Parses and validates an enumerate request body.
Result<DecodedEnumerate> DecodeEnumerateRequest(const std::string& body);

/// \brief Encodes an EnumerationResult exactly as the wire emits it. The
/// bytes are deterministic for a deterministic result (insertion-ordered
/// keys, exact int64s, shortest-round-trip doubles).
std::string EncodeEnumerationResult(const std::string& algorithm,
                                    const api::EnumerationResult& result);

/// \brief One decoded mutation op.
struct MutationOp {
  enum class Kind { kAppend, kDelete };
  Kind kind = Kind::kAppend;
  std::string table;
  reldb::Row row;           // kAppend
  reldb::RowId row_id = 0;  // kDelete
};

/// \brief A decoded mutate body.
struct DecodedMutate {
  std::vector<MutationOp> ops;
  /// Group-commit the journal tail (Session::CommitJournal) after applying,
  /// when the tenant is storage-backed. Default on: a mutate that returned
  /// 200 should be durable.
  bool commit = true;
};

/// \brief Parses and validates a mutate request body. Rows are decoded
/// positionally (JSON null/int/double/string -> reldb::Value); schema arity
/// and type errors surface later from Table::Append.
Result<DecodedMutate> DecodeMutateRequest(const std::string& body);

/// \brief The uniform error body: {"error":{"status",code,"message"}}.
std::string EncodeError(int http_status, const Status& status);

/// \brief reldb::Value -> Json (null/int/double/string, exact).
Json ValueToJson(const reldb::Value& value);

}  // namespace server
}  // namespace hypre
