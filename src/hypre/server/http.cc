#include "hypre/server/http.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/string_util.h"

namespace hypre {
namespace server {

const std::string* HttpRequest::FindHeader(
    const std::string& lower_name) const {
  for (const auto& [name, value] : headers) {
    if (name == lower_name) return &value;
  }
  return nullptr;
}

bool HttpRequest::WantsClose() const {
  const std::string* connection = FindHeader("connection");
  return connection != nullptr && EqualsIgnoreCase(*connection, "close");
}

const char* HttpStatusReason(int status) {
  switch (status) {
    case 200: return "OK";
    case 202: return "Accepted";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 409: return "Conflict";
    case 413: return "Payload Too Large";
    case 429: return "Too Many Requests";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

namespace {

/// Waits for readability with a timeout. Returns +1 readable, 0 timeout,
/// -1 error.
int PollReadable(int fd, int timeout_ms) {
  struct pollfd pfd;
  pfd.fd = fd;
  pfd.events = POLLIN;
  pfd.revents = 0;
  for (;;) {
    int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc < 0 && errno == EINTR) continue;
    return rc < 0 ? -1 : (rc == 0 ? 0 : 1);
  }
}

}  // namespace

Result<size_t> ParseRequestHead(const std::string& head, HttpRequest* request,
                                int* error_status_out) {
  *error_status_out = 0;
  auto fail = [&](int status, const std::string& why) -> Status {
    *error_status_out = status;
    return Status::ParseError(why);
  };

  size_t line_end = head.find("\r\n");
  if (line_end == std::string::npos) {
    return fail(400, "request line not terminated");
  }
  const std::string request_line = head.substr(0, line_end);
  std::vector<std::string> parts = Split(request_line, ' ');
  if (parts.size() != 3) {
    return fail(400, "malformed request line '" + request_line + "'");
  }
  request->method = parts[0];
  request->target = parts[1];
  if (parts[2] != "HTTP/1.1" && parts[2] != "HTTP/1.0") {
    return fail(400, "unsupported protocol '" + parts[2] + "'");
  }
  if (request->target.empty() || request->target[0] != '/') {
    return fail(400, "request target must be origin-form (start with '/')");
  }
  size_t qmark = request->target.find('?');
  request->path = request->target.substr(0, qmark);
  request->query =
      qmark == std::string::npos ? "" : request->target.substr(qmark + 1);

  size_t content_length = 0;
  bool saw_content_length = false;
  size_t pos = line_end + 2;
  while (pos < head.size()) {
    size_t eol = head.find("\r\n", pos);
    if (eol == std::string::npos) return fail(400, "header not terminated");
    if (eol == pos) break;  // blank line: end of headers
    const std::string line = head.substr(pos, eol - pos);
    pos = eol + 2;
    size_t colon = line.find(':');
    if (colon == std::string::npos || colon == 0) {
      return fail(400, "malformed header line '" + line + "'");
    }
    std::string name = ToLower(Trim(line.substr(0, colon)));
    std::string value = Trim(line.substr(colon + 1));
    if (name == "transfer-encoding") {
      // Content-Length framing only; chunked bodies are out of scope.
      return fail(501, "transfer-encoding is not supported");
    }
    if (name == "content-length") {
      if (saw_content_length) {
        return fail(400, "duplicate content-length header");
      }
      saw_content_length = true;
      if (value.empty()) return fail(400, "empty content-length");
      uint64_t n = 0;
      for (char c : value) {
        if (c < '0' || c > '9') return fail(400, "non-numeric content-length");
        n = n * 10 + static_cast<uint64_t>(c - '0');
        if (n > (uint64_t(1) << 40)) return fail(413, "content-length absurd");
      }
      content_length = static_cast<size_t>(n);
    }
    request->headers.emplace_back(std::move(name), std::move(value));
  }
  return content_length;
}

Result<ReadRequestOutcome> ReadHttpRequest(int fd, const HttpLimits& limits) {
  ReadRequestOutcome outcome;
  std::string buffer;
  size_t head_end = std::string::npos;

  // Phase 1: accumulate until the blank line that ends the headers.
  while (head_end == std::string::npos) {
    int ready = PollReadable(fd, limits.read_timeout_ms);
    if (ready < 0) {
      return Status::Internal(std::string("poll: ") + std::strerror(errno));
    }
    if (ready == 0) {
      if (buffer.empty()) {
        // Idle keep-alive connection timed out between requests: just
        // close it, nothing was in flight.
        outcome.closed = true;
        return outcome;
      }
      outcome.error_status = 408;
      outcome.error = "timed out mid-request";
      return outcome;
    }
    char chunk[4096];
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("recv: ") + std::strerror(errno));
    }
    if (n == 0) {
      if (buffer.empty()) {
        outcome.closed = true;
        return outcome;
      }
      outcome.error_status = 400;
      outcome.error = "connection closed mid-request";
      return outcome;
    }
    buffer.append(chunk, static_cast<size_t>(n));
    if (buffer.size() > limits.max_header_bytes + limits.max_body_bytes) {
      outcome.error_status = 431;
      outcome.error = "request exceeds buffer limits";
      return outcome;
    }
    head_end = buffer.find("\r\n\r\n");
    if (head_end == std::string::npos &&
        buffer.size() > limits.max_header_bytes) {
      outcome.error_status = 431;
      outcome.error = "headers exceed " +
                      std::to_string(limits.max_header_bytes) + " bytes";
      return outcome;
    }
  }

  const std::string head = buffer.substr(0, head_end + 4);
  int error_status = 0;
  Result<size_t> content_length =
      ParseRequestHead(head, &outcome.request, &error_status);
  if (!content_length.ok()) {
    outcome.error_status = error_status == 0 ? 400 : error_status;
    outcome.error = content_length.status().message();
    return outcome;
  }
  if (*content_length > limits.max_body_bytes) {
    outcome.error_status = 413;
    outcome.error = "body of " + std::to_string(*content_length) +
                    " bytes exceeds the " +
                    std::to_string(limits.max_body_bytes) + " byte cap";
    return outcome;
  }

  // Phase 2: the body — whatever is already buffered plus the remainder.
  outcome.request.body = buffer.substr(head_end + 4);
  while (outcome.request.body.size() < *content_length) {
    int ready = PollReadable(fd, limits.read_timeout_ms);
    if (ready < 0) {
      return Status::Internal(std::string("poll: ") + std::strerror(errno));
    }
    if (ready == 0) {
      outcome.error_status = 408;
      outcome.error = "timed out reading request body";
      return outcome;
    }
    char chunk[4096];
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("recv: ") + std::strerror(errno));
    }
    if (n == 0) {
      outcome.error_status = 400;
      outcome.error = "connection closed mid-body";
      return outcome;
    }
    outcome.request.body.append(chunk, static_cast<size_t>(n));
  }
  // Anything past Content-Length would be a pipelined second request; this
  // server answers one request per read, so surplus bytes are a client bug.
  if (outcome.request.body.size() > *content_length) {
    outcome.error_status = 400;
    outcome.error = "bytes beyond content-length (pipelining unsupported)";
    return outcome;
  }
  return outcome;
}

std::string SerializeHttpResponse(const HttpResponse& response,
                                  bool keep_alive) {
  std::string out = "HTTP/1.1 ";
  out += std::to_string(response.status);
  out += ' ';
  out += HttpStatusReason(response.status);
  out += "\r\nContent-Type: ";
  out += response.content_type;
  out += "\r\nContent-Length: ";
  out += std::to_string(response.body.size());
  out += "\r\nConnection: ";
  out += keep_alive ? "keep-alive" : "close";
  out += "\r\n";
  for (const auto& [name, value] : response.headers) {
    out += name;
    out += ": ";
    out += value;
    out += "\r\n";
  }
  out += "\r\n";
  out += response.body;
  return out;
}

Status WriteAllToSocket(int fd, const std::string& data) {
  size_t written = 0;
  while (written < data.size()) {
    ssize_t n = ::send(fd, data.data() + written, data.size() - written,
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("send: ") + std::strerror(errno));
    }
    written += static_cast<size_t>(n);
  }
  return Status::OK();
}

Result<int> ConnectTcp(const std::string& host, uint16_t port,
                       int timeout_ms) {
  (void)timeout_ms;
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("not a numeric IPv4 host: " + host);
  }
  if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    Status st = Status::Unavailable(std::string("connect: ") +
                                    std::strerror(errno));
    ::close(fd);
    return st;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

Result<SimpleHttpReply> SendHttpRequest(
    int fd, const std::string& method, const std::string& target,
    const std::string& body,
    const std::vector<std::pair<std::string, std::string>>& extra_headers) {
  std::string out = method + " " + target + " HTTP/1.1\r\n";
  out += "Host: hypre\r\n";
  out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  for (const auto& [name, value] : extra_headers) {
    out += name + ": " + value + "\r\n";
  }
  out += "\r\n";
  out += body;
  HYPRE_RETURN_NOT_OK(WriteAllToSocket(fd, out));

  // Read status line + headers, then Content-Length body bytes.
  std::string buffer;
  size_t head_end = std::string::npos;
  while (head_end == std::string::npos) {
    char chunk[4096];
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("recv: ") + std::strerror(errno));
    }
    if (n == 0) return Status::Internal("server closed before response head");
    buffer.append(chunk, static_cast<size_t>(n));
    head_end = buffer.find("\r\n\r\n");
  }
  SimpleHttpReply reply;
  const std::string head = buffer.substr(0, head_end);
  std::vector<std::string> lines = Split(head, '\n');
  if (lines.empty()) return Status::Internal("empty response head");
  std::vector<std::string> status_parts = Split(Trim(lines[0]), ' ');
  if (status_parts.size() < 2) {
    return Status::Internal("malformed status line '" + lines[0] + "'");
  }
  reply.status = std::atoi(status_parts[1].c_str());
  size_t content_length = 0;
  for (size_t i = 1; i < lines.size(); ++i) {
    std::string line = Trim(lines[i]);
    size_t colon = line.find(':');
    if (colon == std::string::npos) continue;
    std::string name = ToLower(Trim(line.substr(0, colon)));
    std::string value = Trim(line.substr(colon + 1));
    if (name == "content-length") {
      content_length = static_cast<size_t>(std::atoll(value.c_str()));
    }
    reply.headers.emplace_back(std::move(name), std::move(value));
  }
  reply.body = buffer.substr(head_end + 4);
  while (reply.body.size() < content_length) {
    char chunk[4096];
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("recv: ") + std::strerror(errno));
    }
    if (n == 0) return Status::Internal("server closed mid-body");
    reply.body.append(chunk, static_cast<size_t>(n));
  }
  return reply;
}

}  // namespace server
}  // namespace hypre
