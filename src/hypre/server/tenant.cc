#include "hypre/server/tenant.h"

#include <dirent.h>

#include <algorithm>
#include <fstream>

#include "reldb/csv.h"
#include "workload/dblp_generator.h"

namespace hypre {
namespace server {

// --- Tenant ----------------------------------------------------------------

/// One queued write. `mu` orders the caller's deadline race against the
/// writer's start: whoever locks first wins — a job is either abandoned
/// before it starts or runs to completion, never half-observed.
struct Tenant::WriteJob {
  std::function<Status()> fn;
  std::mutex mu;
  std::condition_variable cv;
  bool started = false;
  bool abandoned = false;
  bool done = false;
  Status result;
};

Tenant::Tenant(std::string name, std::unique_ptr<api::Session> session,
               size_t writer_queue_depth)
    : name_(std::move(name)),
      session_(std::move(session)),
      queue_depth_(writer_queue_depth) {
  writer_ = std::thread([this] { WriterMain(); });
}

Tenant::~Tenant() { Shutdown(); }

void Tenant::WriterMain() {
  for (;;) {
    std::shared_ptr<WriteJob> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      queue_cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ with a drained queue
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    {
      std::lock_guard<std::mutex> job_lock(job->mu);
      if (job->abandoned) continue;  // caller's deadline passed while queued
      job->started = true;
    }
    Status result = job->fn();
    {
      std::lock_guard<std::mutex> job_lock(job->mu);
      job->done = true;
      job->result = std::move(result);
    }
    job->cv.notify_all();
    std::lock_guard<std::mutex> lock(mu_);
    ++executed_;
  }
}

Status Tenant::ExecuteWrite(
    std::function<Status()> fn,
    std::optional<std::chrono::steady_clock::time_point> deadline) {
  auto job = std::make_shared<WriteJob>();
  job->fn = std::move(fn);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      ++shed_;
      return Status::Unavailable("tenant '" + name_ + "' is shutting down");
    }
    if (queue_depth_ != 0 && queue_.size() >= queue_depth_) {
      ++shed_;
      return Status::Unavailable(
          "writer queue full (" + std::to_string(queue_.size()) +
          " writes queued, cap " + std::to_string(queue_depth_) + ")");
    }
    queue_.push_back(job);
  }
  queue_cv_.notify_one();

  std::unique_lock<std::mutex> job_lock(job->mu);
  if (deadline.has_value()) {
    if (!job->cv.wait_until(job_lock, *deadline, [&] { return job->done; })) {
      if (!job->started) {
        job->abandoned = true;
        job_lock.unlock();
        std::lock_guard<std::mutex> lock(mu_);
        ++shed_;
        return Status::Unavailable(
            "write still queued when its deadline passed");
      }
      // Started: the mutation is running, so its outcome matters — wait it
      // out rather than return an answer of unknown durability.
      job->cv.wait(job_lock, [&] { return job->done; });
    }
  } else {
    job->cv.wait(job_lock, [&] { return job->done; });
  }
  return job->result;
}

Status Tenant::Drain() {
  // FIFO queue: once this marker job has run, everything queued before it
  // has too. Bypasses the depth bound — drains must not be shed.
  auto job = std::make_shared<WriteJob>();
  job->fn = [] { return Status::OK(); };
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return Status::OK();  // Shutdown() already drained
    queue_.push_back(job);
  }
  queue_cv_.notify_one();
  std::unique_lock<std::mutex> job_lock(job->mu);
  job->cv.wait(job_lock, [&] { return job->done; });
  return Status::OK();
}

Status Tenant::FlushCheckpoint() {
  if (!session_->has_storage()) return Status::OK();
  auto job = std::make_shared<WriteJob>();
  job->fn = [this] { return session_->SaveSnapshot(); };
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      return Status::Unavailable("tenant '" + name_ +
                                 "' writer already stopped");
    }
    queue_.push_back(job);
  }
  queue_cv_.notify_one();
  std::unique_lock<std::mutex> job_lock(job->mu);
  job->cv.wait(job_lock, [&] { return job->done; });
  return job->result;
}

void Tenant::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      // Second caller: the writer is draining or gone; fall through to
      // join (guarded below for the non-owning duplicate call).
    }
    stopping_ = true;
  }
  queue_cv_.notify_all();
  if (writer_.joinable()) writer_.join();
}

uint64_t Tenant::writes_executed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return executed_;
}

uint64_t Tenant::writes_shed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return shed_;
}

// --- TenantManager ---------------------------------------------------------

namespace {

bool FileExists(const std::string& path) {
  std::ifstream f(path);
  return f.good();
}

/// Sorted *.csv file names (not paths) in `dir`.
Result<std::vector<std::string>> ListCsvFiles(const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) {
    return Status::NotFound("cannot open csv_dir '" + dir + "'");
  }
  std::vector<std::string> names;
  while (struct dirent* entry = ::readdir(d)) {
    std::string name = entry->d_name;
    if (name.size() > 4 && name.compare(name.size() - 4, 4, ".csv") == 0) {
      names.push_back(std::move(name));
    }
  }
  ::closedir(d);
  std::sort(names.begin(), names.end());
  return names;
}

Result<std::unique_ptr<api::Session>> OpenSession(
    const TenantSpec& spec, const TenantManagerOptions& options) {
  std::unique_ptr<api::Session> session;
  const bool warm = !spec.storage_dir.empty() &&
                    FileExists(spec.storage_dir + "/snapshot.hypre");
  if (warm) {
    HYPRE_ASSIGN_OR_RETURN(session,
                           api::Session::OpenFromSnapshot(spec.storage_dir));
  } else {
    auto db = std::make_unique<reldb::Database>();
    if (!spec.csv_dir.empty()) {
      HYPRE_ASSIGN_OR_RETURN(std::vector<std::string> files,
                             ListCsvFiles(spec.csv_dir));
      if (files.empty()) {
        return Status::NotFound("csv_dir '" + spec.csv_dir +
                                "' holds no *.csv files");
      }
      for (const std::string& file : files) {
        const std::string path = spec.csv_dir + "/" + file;
        std::ifstream in(path);
        if (!in.good()) return Status::NotFound("cannot read '" + path + "'");
        const std::string table = file.substr(0, file.size() - 4);
        HYPRE_RETURN_NOT_OK(
            reldb::LoadCsvAsTable(&in, table, db.get()).status());
      }
    } else if (spec.synthetic_papers > 0) {
      workload::DblpConfig config;
      config.num_papers = spec.synthetic_papers;
      config.num_authors = std::max<size_t>(1, spec.synthetic_papers / 3);
      config.seed = spec.synthetic_seed;
      HYPRE_RETURN_NOT_OK(workload::GenerateDblp(config, db.get()).status());
    } else {
      return Status::InvalidArgument(
          "tenant '" + spec.name +
          "' has no data source (storage_dir snapshot, csv_dir, or "
          "synthetic_papers)");
    }
    session = std::make_unique<api::Session>(std::move(db));
    if (!spec.storage_dir.empty()) {
      HYPRE_RETURN_NOT_OK(session->AttachStorage(spec.storage_dir));
    }
  }
  session->scheduler().set_options(options.scheduler);
  return session;
}

}  // namespace

TenantManager::TenantManager(std::vector<TenantSpec> specs,
                             TenantManagerOptions options)
    : options_(std::move(options)) {
  for (TenantSpec& spec : specs) {
    std::string name = spec.name;
    specs_.emplace(std::move(name), std::move(spec));
  }
}

TenantManager::~TenantManager() { (void)ShutdownAll(); }

Result<std::shared_ptr<Tenant>> TenantManager::Get(const std::string& name) {
  std::vector<std::shared_ptr<Tenant>> evicted;
  Result<std::shared_ptr<Tenant>> result = [&]() -> Result<std::shared_ptr<Tenant>> {
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      auto it = open_.find(name);
      if (it != open_.end()) {
        lru_.remove(name);
        lru_.push_front(name);
        return it->second;
      }
      auto spec_it = specs_.find(name);
      if (spec_it == specs_.end()) {
        return Status::NotFound("unknown tenant '" + name + "'");
      }
      if (std::find(opening_.begin(), opening_.end(), name) !=
          opening_.end()) {
        // Another thread is opening this tenant; wait and re-check.
        opening_cv_.wait(lock);
        continue;
      }
      opening_.push_back(name);
      lock.unlock();
      Result<std::unique_ptr<api::Session>> session =
          OpenSession(spec_it->second, options_);
      lock.lock();
      opening_.erase(std::find(opening_.begin(), opening_.end(), name));
      opening_cv_.notify_all();
      if (!session.ok()) return session.status();
      auto tenant = std::make_shared<Tenant>(name, std::move(*session),
                                             options_.writer_queue_depth);
      open_.emplace(name, tenant);
      lru_.push_front(name);
      while (options_.max_open_tenants != 0 &&
             open_.size() > options_.max_open_tenants) {
        const std::string victim = lru_.back();
        lru_.pop_back();
        evicted.push_back(open_.at(victim));
        open_.erase(victim);
      }
      return tenant;
    }
  }();
  // Shut evicted tenants down outside the lock: the drain + checkpoint
  // flush can take a while and must not block unrelated Get()s. In-flight
  // requests still holding the shared_ptr finish safely.
  for (const std::shared_ptr<Tenant>& tenant : evicted) {
    (void)tenant->FlushCheckpoint();
    tenant->Shutdown();
  }
  return result;
}

std::vector<std::string> TenantManager::TenantNames() const {
  std::vector<std::string> names;
  names.reserve(specs_.size());
  for (const auto& [name, spec] : specs_) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

size_t TenantManager::num_open() const {
  std::lock_guard<std::mutex> lock(mu_);
  return open_.size();
}

Status TenantManager::ShutdownAll() {
  std::vector<std::shared_ptr<Tenant>> tenants;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [name, tenant] : open_) tenants.push_back(tenant);
    open_.clear();
    lru_.clear();
  }
  Status first_error;
  for (const std::shared_ptr<Tenant>& tenant : tenants) {
    Status flushed = tenant->FlushCheckpoint();
    if (!flushed.ok() && first_error.ok()) first_error = flushed;
    tenant->Shutdown();
  }
  return first_error;
}

}  // namespace server
}  // namespace hypre
