// Request routing and handlers: the layer between HTTP framing and the
// tenant sessions.
//
// Routes (docs/server_api.md is the full reference):
//
//   POST /v1/{tenant}/enumerate   run one EnumerationRequest
//   POST /v1/{tenant}/mutate      apply append/delete ops (writer thread)
//   GET  /v1/{tenant}/stats       scheduler + writer + engine counters
//   GET  /metrics                 Prometheus text (PR 8 registry)
//   GET  /healthz                 liveness + configured tenants
//
// The request lifecycle for enumerate:
//
//   decode (strict JSON -> 400 on any fault)
//     -> tenant lookup (lazy open; unknown -> 404)
//     -> deadline resolution (body "deadline_ms", X-Hypre-Deadline-Ms
//        header, or the server default; smallest wins)
//     -> refresh split: a refresh-bearing request first runs
//        Session::Refresh ON THE TENANT'S WRITER THREAD (the single-writer
//        contract), then re-enters as a refresh=false PURE READ
//     -> the read fans out through the session's AdmissionScheduler with
//        admission_timeout_ms = the remaining deadline; a shed request
//        (queue full / deadline passed) comes back Unavailable
//     -> encode, or map the Status to HTTP
//
// Status -> HTTP: InvalidArgument/ParseError 400, NotFound 404,
// Unavailable 429 + Retry-After, NotImplemented 501, everything else 500.
// Handle() itself never fails: every fault becomes a well-formed JSON
// error body ({"error":{status,code,message}}).
#pragma once

#include <string>

#include "hypre/server/codec.h"
#include "hypre/server/http.h"
#include "hypre/server/tenant.h"

namespace hypre {
namespace server {

struct ServiceOptions {
  /// Honor "debug_sleep_ms" in enumerate bodies (synthetic latency held
  /// INSIDE the admission window, so tests can saturate the queue
  /// deterministically). Never enable outside tests/CI.
  bool enable_debug = false;
  /// Deadline applied when a request names none; 0 = wait indefinitely.
  uint64_t default_deadline_ms = 0;
};

/// \brief Maps a Status to the HTTP status it travels as.
int HttpStatusForCode(StatusCode code);

/// \brief Stateless-per-request router over a TenantManager. Thread-safe:
/// any number of workers call Handle() concurrently.
class Service {
 public:
  Service(TenantManager* tenants, ServiceOptions options)
      : tenants_(tenants), options_(options) {}

  /// \brief Dispatches one request to its handler.
  HttpResponse Handle(const HttpRequest& request);

  /// \brief The uniform error response (JSON body, Retry-After on 429/503).
  static HttpResponse ErrorResponse(int http_status, const Status& status);

 private:
  HttpResponse HandleEnumerate(Tenant* tenant, const HttpRequest& request);
  HttpResponse HandleMutate(Tenant* tenant, const HttpRequest& request);
  HttpResponse HandleStats(Tenant* tenant);
  HttpResponse HandleMetrics();
  HttpResponse HandleHealth();

  /// Smallest of body deadline, X-Hypre-Deadline-Ms, and the default.
  uint64_t ResolveDeadlineMs(const HttpRequest& request,
                             uint64_t body_deadline_ms) const;

  TenantManager* tenants_;
  const ServiceOptions options_;
};

}  // namespace server
}  // namespace hypre
