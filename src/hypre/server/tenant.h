// Tenant registry: one api::Session per tenant, lazily opened, LRU-capped,
// with a DEDICATED WRITER THREAD enforcing the session's single-writer
// contract.
//
// The Session thread model (api/session.h) is single writer, many readers:
// pure reads (refresh=false enumerations) may run from any thread, but
// base-table mutations, refresh-bearing work, and storage checkpoints must
// be serialized by the caller. An HTTP server has no natural single caller
// — any worker may pick up a mutate — so each Tenant owns ONE writer
// thread and a bounded job queue:
//
//   worker (mutate / refresh-bearing enumerate)
//       │  ExecuteWrite(fn, deadline)           ── enqueue, block on done
//       ▼
//   writer thread: pop ── run fn on the session ── publish Status, notify
//
// Reads never touch the queue; they fan out through the session's
// AdmissionScheduler directly. Overload on the write side is typed the
// same way as the read side: a full queue, or a job still QUEUED when the
// caller's deadline passes, returns Status::Unavailable (the HTTP 429). A
// job the writer has already STARTED always runs to completion and the
// caller waits for its real Status — abandoning an in-flight mutation
// would leave its durability unknown.
//
// Tenants open lazily on first request, from one of three sources (spec
// fields, first match wins):
//   storage_dir with a snapshot  -> Session::OpenFromSnapshot (warm)
//   csv_dir                      -> one table per *.csv, schema inferred
//   synthetic_papers > 0         -> workload::GenerateDblp (deterministic
//                                   per seed — what the tests/bench use)
// A cold-loaded tenant with a storage_dir attaches it after loading, so
// later checkpoints land there. When more than `max_open_tenants` are
// open, the least-recently-USED tenant is shut down (writer drained,
// checkpoint flushed) and dropped; handed-out shared_ptrs keep in-flight
// requests on an evicted tenant safe until they finish.
#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "hypre/api/session.h"

namespace hypre {
namespace server {

/// \brief Where one tenant's data comes from (see file comment for the
/// source precedence) and what it is called in the URL space.
struct TenantSpec {
  std::string name;
  /// Storage directory: reopened warm when it already holds a snapshot,
  /// attached fresh (initial checkpoint written) after a cold load.
  std::string storage_dir;
  /// Cold CSV load: every *.csv in this directory becomes a table named
  /// after the file, schema inferred from header + first row.
  std::string csv_dir;
  /// Synthetic DBLP network of this many papers (0 = not synthetic).
  size_t synthetic_papers = 0;
  uint64_t synthetic_seed = 42;
};

struct TenantManagerOptions {
  /// Most tenants open at once; 0 = unlimited. Eviction is LRU.
  size_t max_open_tenants = 0;
  /// Writer-queue bound per tenant: a mutate arriving with this many jobs
  /// already queued is shed with Unavailable.
  size_t writer_queue_depth = 64;
  /// Applied to every opened session's AdmissionScheduler (read-side
  /// concurrency / probe-budget / queue-depth caps).
  api::AdmissionScheduler::Options scheduler;
};

/// \brief One open tenant: the session plus its writer thread.
class Tenant {
 public:
  Tenant(std::string name, std::unique_ptr<api::Session> session,
         size_t writer_queue_depth);
  ~Tenant();

  Tenant(const Tenant&) = delete;
  Tenant& operator=(const Tenant&) = delete;

  const std::string& name() const { return name_; }
  api::Session* session() { return session_.get(); }

  /// \brief Runs `fn` on the writer thread and blocks until it finishes,
  /// returning its Status. Sheds with Unavailable when the queue is at its
  /// bound, or when `deadline` passes while the job is still queued; once
  /// started a job always runs to completion (the caller keeps waiting).
  Status ExecuteWrite(
      std::function<Status()> fn,
      std::optional<std::chrono::steady_clock::time_point> deadline =
          std::nullopt);

  /// \brief Blocks until every currently queued write has run.
  Status Drain();

  /// \brief Serialized on the writer thread: group-commits the journal and
  /// waits out any background checkpoint. No-op without attached storage.
  /// The graceful-shutdown path runs this per dirty tenant.
  Status FlushCheckpoint();

  /// \brief Drains and joins the writer thread; later writes are shed with
  /// Unavailable. Idempotent. Reads via session() remain valid while the
  /// Tenant object lives.
  void Shutdown();

  /// \brief Writes applied (jobs run, successful or not) / shed.
  uint64_t writes_executed() const;
  uint64_t writes_shed() const;

 private:
  struct WriteJob;
  void WriterMain();

  const std::string name_;
  std::unique_ptr<api::Session> session_;
  const size_t queue_depth_;

  mutable std::mutex mu_;
  std::condition_variable queue_cv_;
  std::deque<std::shared_ptr<WriteJob>> queue_;
  bool stopping_ = false;
  uint64_t executed_ = 0;
  uint64_t shed_ = 0;
  std::thread writer_;
};

/// \brief Name -> Tenant map with lazy open and LRU eviction. Thread-safe;
/// concurrent Get()s for the same cold tenant open it once.
class TenantManager {
 public:
  TenantManager(std::vector<TenantSpec> specs, TenantManagerOptions options);
  ~TenantManager();

  /// \brief The tenant, opening it on first use. Unknown names fail with
  /// NotFound (the HTTP 404); open failures surface as-is.
  Result<std::shared_ptr<Tenant>> Get(const std::string& name);

  /// \brief Configured tenant names, sorted.
  std::vector<std::string> TenantNames() const;

  /// \brief Currently open tenants (for /healthz and tests).
  size_t num_open() const;

  /// \brief Graceful shutdown: every open tenant's writer drained and its
  /// checkpoint flushed. Returns the first error but keeps going — one
  /// tenant's bad disk must not strand another's WAL tail.
  Status ShutdownAll();

 private:
  Result<std::shared_ptr<Tenant>> OpenLocked(const TenantSpec& spec,
                                             std::unique_lock<std::mutex>* lock);

  const TenantManagerOptions options_;
  std::unordered_map<std::string, TenantSpec> specs_;

  mutable std::mutex mu_;
  std::condition_variable opening_cv_;
  std::unordered_map<std::string, std::shared_ptr<Tenant>> open_;
  /// Most-recently-used first; names mirror `open_` keys.
  std::list<std::string> lru_;
  /// Tenants mid-open (Get released the lock for the load itself).
  std::vector<std::string> opening_;
};

}  // namespace server
}  // namespace hypre
