// Evaluation metrics (dissertation §5.1, §5.2, §7.6.2).
//
// NOT runtime telemetry. This file scores result QUALITY — how selective,
// useful, and mutually similar the enumerated combinations are, per the
// paper's evaluation chapter. Operational metrics (latency histograms,
// cache hit counters, scheduler/WAL accounting) live in
// hypre/telemetry/registry.h; the two share nothing but the word
// "metrics".
//
//   Pref_Selectivity = #tuples / #preferences                  (Eq. 5.1)
//   Utility          = Pref_Selectivity * combined intensity   (Eq. 5.2)
//   Coverage         = distinct tuples touched when every preference is
//                      applied independently (Definition 18)
//   Similarity       = fraction of tuples common to two result lists
//   Overlap          = fraction of the common tuples whose relative order
//                      agrees across the two lists
// plus the combination-space bounds:
//   AND only:   2^N - 1                                        (Eq. 5.3)
//   AND + OR:   (3^N - 1) / 2                                  (Eq. 5.6)
#pragma once

#include <cstddef>
#include <vector>

#include "common/status.h"
#include "hypre/preference.h"
#include "hypre/query_enhancement.h"
#include "hypre/ranking.h"
#include "reldb/value.h"

namespace hypre {
namespace core {

/// \brief Eq. 5.1. Returns 0 when no preferences are used.
double PrefSelectivity(size_t num_tuples, size_t num_preferences);

/// \brief Eq. 5.2, with the dissertation's first-page cap: only the first
/// `page_cap` tuples count toward selectivity (§7.1.1 uses 25) so that
/// huge low-intensity results do not register as outlier utility.
double Utility(size_t num_tuples, size_t num_preferences, double intensity,
               size_t page_cap = 25);

/// \brief Definition 18: the union of tuples matched by each predicate run
/// independently against the enhancer's base query.
Result<size_t> Coverage(const QueryEnhancer& enhancer,
                        const std::vector<reldb::ExprPtr>& predicates);

/// \brief Definition 21: |A ∩ B| / max(|A|, |B|), as a percentage in
/// [0, 100]. 100 when both lists contain the same tuples (order ignored);
/// 0 when disjoint. Two empty lists are 100% similar.
double Similarity(const std::vector<reldb::Value>& a,
                  const std::vector<reldb::Value>& b);

/// \brief Tie-aware order preservation: over all pairs of common tuples
/// that are NOT tied (by intensity) in either list, the percentage of pairs
/// ranked in the same relative order by both lists (Kendall-style
/// concordance). Positional Overlap() is dominated by arbitrary tie
/// ordering when many tuples share a grade (typical for TA's per-attribute
/// lists); this variant measures what §7.6.3 actually claims — that the
/// relative order of the common tuples is preserved. Vacuously 100 when no
/// comparable pair exists.
double RankAgreement(const std::vector<RankedTuple>& a,
                     const std::vector<RankedTuple>& b);

/// \brief Definition 22: restrict both lists to their common tuples
/// (preserving order) and return the percentage of positions on which the
/// two restricted sequences agree. 100 when the relative order of all
/// common tuples is preserved; vacuously 100 when nothing is common.
double Overlap(const std::vector<reldb::Value>& a,
               const std::vector<reldb::Value>& b);

/// \brief Eq. 5.3: number of AND-only combinations of N preferences
/// (2^N - 1). Returned as double because it overflows quickly.
double CountAndCombinations(size_t n);

/// \brief Eq. 5.6: number of AND/OR combinations of N preferences
/// ((3^N - 1) / 2).
double CountAndOrCombinations(size_t n);

}  // namespace core
}  // namespace hypre
