#include "hypre/intensity.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace hypre {
namespace core {

namespace {

double Sign(double v) {
  if (v > 0) return 1.0;
  if (v < 0) return -1.0;
  return 0.0;
}

}  // namespace

bool IsValidQuantitativeIntensity(double v) {
  return std::isfinite(v) && v >= kMinIntensity && v <= kMaxIntensity;
}

bool IsValidQualitativeIntensity(double v) {
  return std::isfinite(v) && v >= 0.0 && v <= 1.0;
}

double IntensityLeft(double ql, double qt) {
  return std::min(1.0, qt * std::exp2(Sign(qt) * ql));
}

double IntensityRight(double ql, double qt) {
  return std::max(-1.0, qt * std::exp2(-Sign(qt) * ql));
}

double CombineAnd(double p1, double p2) { return 1.0 - (1.0 - p1) * (1.0 - p2); }

double CombineOr(double p1, double p2) { return (p1 + p2) / 2.0; }

double CombineAndAll(std::span<const double> values) {
  double complement = 1.0;
  for (double v : values) complement *= (1.0 - v);
  return 1.0 - complement;
}

double CombineOrFold(std::span<const double> values) {
  if (values.empty()) return 0.0;
  double acc = values[0];
  for (size_t i = 1; i < values.size(); ++i) acc = CombineOr(acc, values[i]);
  return acc;
}

double MinPredicatesToExceed(double p1, double p2) {
  if (p1 <= p2) return 1.0;
  if (p2 <= 0.0) return std::numeric_limits<double>::infinity();
  if (p1 >= 1.0) return std::numeric_limits<double>::infinity();
  return std::log(1.0 - p1) / std::log(1.0 - p2);
}

}  // namespace core
}  // namespace hypre
