// Intensity algebra: the numeric heart of the HYPRE model.
//
// Implements the dissertation's Equations 4.1-4.4:
//   IntensityLeft (ql, qt) = min( 1, qt * 2^( sign(qt)*ql))   (Eq. 4.1)
//   IntensityRight(ql, qt) = max(-1, qt * 2^(-sign(qt)*ql))   (Eq. 4.2)
//   f_and(p1, p2) = 1 - (1-p1)(1-p2)                          (Eq. 4.3)
//   f_or (p1, p2) = (p1 + p2) / 2                             (Eq. 4.4)
// plus the Proposition 6 pruning bound used by PEPS.
//
// Quantitative intensities live in [-1, 1]; qualitative intensities in
// [0, 1] (negative qualitative intensities are normalized away by edge
// reversal, Proposition 7).
#pragma once

#include <cstddef>
#include <span>

namespace hypre {
namespace core {

inline constexpr double kMinIntensity = -1.0;
inline constexpr double kMaxIntensity = 1.0;

/// \brief True iff `v` is a legal quantitative intensity (in [-1, 1]).
bool IsValidQuantitativeIntensity(double v);

/// \brief True iff `v` is a legal qualitative (edge) intensity (in [0, 1]).
/// Negative values are legal *input* but are normalized by reversing the
/// edge before storage (Proposition 7), so stored values are in [0, 1].
bool IsValidQualitativeIntensity(double v);

/// \brief Eq. 4.1: intensity for the left (preferred) node given the
/// qualitative strength `ql` and the right node's quantitative value `qt`.
/// Guarantees IntensityLeft(ql, qt) >= qt and result <= 1.
double IntensityLeft(double ql, double qt);

/// \brief Eq. 4.2: intensity for the right (less preferred) node given the
/// qualitative strength `ql` and the left node's quantitative value `qt`.
/// Guarantees IntensityRight(ql, qt) <= qt and result >= -1.
double IntensityRight(double ql, double qt);

/// \brief Eq. 4.3: inflationary conjunctive composition. Commutative and
/// associative (Proposition 1), so AND-combined intensity is order
/// independent.
double CombineAnd(double p1, double p2);

/// \brief Eq. 4.4: reserved disjunctive composition (the average). NOT
/// associative: the result depends on composition order (Proposition 2).
double CombineOr(double p1, double p2);

/// \brief Left fold of CombineAnd over `values` (identity 0 on empty input).
double CombineAndAll(std::span<const double> values);

/// \brief Left fold of CombineOr over `values` in the given order (identity:
/// single value for one element; 0 for empty).
double CombineOrFold(std::span<const double> values);

/// \brief Proposition 6: the minimum number K of preferences of intensity
/// `p2` whose AND-combination can reach intensity `p1`:
///   K = log(1 - p1) / log(1 - p2).
/// Returns +infinity when p2 <= 0 (cannot ever reach a positive p1) and 1.0
/// when p1 <= p2 (already reachable with one). p1, p2 expected in [0, 1).
double MinPredicatesToExceed(double p1, double p2);

}  // namespace core
}  // namespace hypre
