// HYPRE graph persistence: save/load user profiles to a line-based format.
//
// The dissertation's prototype persists profiles in Neo4j's store; this
// repo's embedded store is in-memory, so profiles are serialized to a
// versioned, human-inspectable text format instead:
//
//   hypre-graph v1
//   node <id> <uid> <provenance> <has_intensity> [<intensity>] <predicate>
//   edge <src> <dst> <label> <intensity>
//
// Predicates are written last on the line (they may contain spaces) and are
// escaped for newlines. Loading rebuilds the graph through the public
// GraphStore surface, so invariants (indexes, adjacency) are reconstructed
// rather than trusted from the file.
#pragma once

#include <iosfwd>
#include <string>

#include "common/status.h"
#include "hypre/hypre_graph.h"

namespace hypre {
namespace core {

/// \brief Writes the whole graph (all users) to `out`.
Status SaveGraph(const HypreGraph& graph, std::ostream* out);

/// \brief Convenience file variant.
Status SaveGraphToFile(const HypreGraph& graph, const std::string& path);

/// \brief Reads a graph previously written by SaveGraph into `graph`
/// (which must be empty). Fails on version/format errors without partial
/// mutation guarantees beyond node/edge granularity.
Status LoadGraph(std::istream* in, HypreGraph* graph);

/// \brief Convenience file variant.
Status LoadGraphFromFile(const std::string& path, HypreGraph* graph);

}  // namespace core
}  // namespace hypre
