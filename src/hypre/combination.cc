#include "hypre/combination.h"

#include <algorithm>

#include "hypre/intensity.h"

namespace hypre {
namespace core {

size_t Combination::NumPredicates() const {
  size_t n = 0;
  for (const auto& group : groups) n += group.members.size();
  return n;
}

bool Combination::ContainsAttribute(const std::string& attribute_key) const {
  for (const auto& group : groups) {
    if (group.attribute_key == attribute_key) return true;
  }
  return false;
}

bool Combination::ContainsMember(size_t index) const {
  for (const auto& group : groups) {
    if (std::find(group.members.begin(), group.members.end(), index) !=
        group.members.end()) {
      return true;
    }
  }
  return false;
}

std::vector<size_t> Combination::SortedMembers() const {
  std::vector<size_t> out;
  for (const auto& group : groups) {
    out.insert(out.end(), group.members.begin(), group.members.end());
  }
  std::sort(out.begin(), out.end());
  return out;
}

Combination Combiner::Single(size_t index) const {
  Combination combination;
  Combination::Group group;
  group.attribute_key = (*preferences_)[index].attribute_key;
  group.members.push_back(index);
  combination.groups.push_back(std::move(group));
  return combination;
}

Combination Combiner::AndExtend(const Combination& base, size_t index) const {
  Combination combination = base;
  Combination::Group group;
  group.attribute_key = (*preferences_)[index].attribute_key;
  group.members.push_back(index);
  combination.groups.push_back(std::move(group));
  return combination;
}

Combination Combiner::OrInto(const Combination& base, size_t index) const {
  Combination combination = base;
  const std::string& key = (*preferences_)[index].attribute_key;
  for (auto& group : combination.groups) {
    if (group.attribute_key == key) {
      group.members.push_back(index);
      return combination;
    }
  }
  Combination::Group group;
  group.attribute_key = key;
  group.members.push_back(index);
  combination.groups.push_back(std::move(group));
  return combination;
}

Combination Combiner::MixedClause(const std::vector<size_t>& members) const {
  Combination combination;
  for (size_t index : members) {
    if (combination.ContainsAttribute((*preferences_)[index].attribute_key)) {
      combination = OrInto(combination, index);
    } else {
      combination = AndExtend(combination, index);
    }
  }
  return combination;
}

reldb::ExprPtr Combiner::BuildExpr(const Combination& combination) const {
  std::vector<reldb::ExprPtr> group_exprs;
  group_exprs.reserve(combination.groups.size());
  for (const auto& group : combination.groups) {
    std::vector<reldb::ExprPtr> member_exprs;
    member_exprs.reserve(group.members.size());
    for (size_t index : group.members) {
      member_exprs.push_back((*preferences_)[index].expr);
    }
    group_exprs.push_back(reldb::MakeOr(std::move(member_exprs)));
  }
  return reldb::MakeAnd(std::move(group_exprs));
}

double Combiner::ComputeIntensity(const Combination& combination) const {
  std::vector<double> group_values;
  group_values.reserve(combination.groups.size());
  for (const auto& group : combination.groups) {
    std::vector<double> member_values;
    member_values.reserve(group.members.size());
    for (size_t index : group.members) {
      member_values.push_back((*preferences_)[index].intensity);
    }
    group_values.push_back(CombineOrFold(member_values));
  }
  return CombineAndAll(group_values);
}

std::string Combiner::ToSql(const Combination& combination) const {
  return BuildExpr(combination)->ToString();
}

Status CombinationProber::PrefetchAll() const {
  const auto& prefs = combiner_->preferences();
  std::vector<reldb::ExprPtr> exprs;
  exprs.reserve(prefs.size());
  for (const auto& pref : prefs) exprs.push_back(pref.expr);
  HYPRE_RETURN_NOT_OK(engine_->PrefetchLeaves(exprs));
  // Materializing the per-preference bitmaps is now pure bitmap algebra.
  for (size_t i = 0; i < prefs.size(); ++i) {
    HYPRE_RETURN_NOT_OK(PreferenceBits(i).status());
  }
  return Status::OK();
}

Result<const KeyBitmap*> CombinationProber::PreferenceBits(
    size_t index) const {
  if (cached_epoch_ != engine_->epoch()) {
    // The engine refreshed under us: every cached bitmap reflects a dead
    // epoch. Drop them all; re-materialization below is pure bitmap algebra
    // over the patched leaf cache.
    member_bits_.clear();
    cached_epoch_ = engine_->epoch();
  }
  if (member_bits_.size() < combiner_->preferences().size()) {
    member_bits_.resize(combiner_->preferences().size());
  }
  if (member_bits_[index] == nullptr) {
    HYPRE_ASSIGN_OR_RETURN(
        KeyBitmap bits,
        engine_->EvalBitmap(combiner_->preferences()[index].expr));
    member_bits_[index] = std::make_unique<KeyBitmap>(std::move(bits));
  }
  return member_bits_[index].get();
}

Status CombinationProber::BitsInto(const Combination& combination,
                                   KeyBitmap* out) const {
  bool first = true;
  for (const auto& group : combination.groups) {
    const KeyBitmap* group_bits;
    if (group.members.size() == 1) {
      HYPRE_ASSIGN_OR_RETURN(group_bits, PreferenceBits(group.members[0]));
    } else {
      HYPRE_ASSIGN_OR_RETURN(const KeyBitmap* bits0,
                             PreferenceBits(group.members[0]));
      group_scratch_ = *bits0;
      for (size_t pos = 1; pos < group.members.size(); ++pos) {
        HYPRE_ASSIGN_OR_RETURN(const KeyBitmap* bits,
                               PreferenceBits(group.members[pos]));
        group_scratch_.OrWith(*bits);
      }
      group_bits = &group_scratch_;
    }
    if (first) {
      *out = *group_bits;
      first = false;
    } else {
      out->AndWith(*group_bits);
      if (out->None()) break;  // short-circuit: empty intersection
    }
  }
  if (first) {
    *out = KeyBitmap();
    return Status::OK();
  }
  // Tombstoned keys are masked out of every probe result (delta contract).
  if (engine_->has_tombstones()) {
    HYPRE_ASSIGN_OR_RETURN(const KeyBitmap* live, engine_->UniverseBitmap());
    out->AndWith(*live);
  }
  return Status::OK();
}

Result<size_t> CombinationProber::Count(
    const Combination& combination) const {
  const auto& groups = combination.groups;
  bool pure_and = !groups.empty();
  for (const auto& group : groups) {
    if (group.members.size() != 1) {
      pure_and = false;
      break;
    }
  }
  if (pure_and) {
    // AND chain of any length: fold the popcount in one fused word pass over
    // the cached per-preference bitmaps, no scratch materialization. The
    // live mask joins the chain as one more operand when keys are
    // tombstoned.
    and_operands_.clear();
    for (const auto& group : groups) {
      HYPRE_ASSIGN_OR_RETURN(const KeyBitmap* bits,
                             PreferenceBits(group.members[0]));
      and_operands_.push_back(bits);
    }
    if (engine_->has_tombstones()) {
      HYPRE_ASSIGN_OR_RETURN(const KeyBitmap* live, engine_->UniverseBitmap());
      and_operands_.push_back(live);
    }
    engine_->NoteProbesAnswered(1);
    return KeyBitmap::AndCountMulti(and_operands_.data(),
                                    and_operands_.size());
  }
  HYPRE_RETURN_NOT_OK(BitsInto(combination, &count_scratch_));
  engine_->NoteProbesAnswered(1);
  return count_scratch_.Count();
}

}  // namespace core
}  // namespace hypre
