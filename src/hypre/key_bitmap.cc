#include "hypre/key_bitmap.h"

namespace hypre {
namespace core {

KeyBitmap::KeyBitmap(size_t num_bits, bool all_set)
    : num_bits_(num_bits),
      words_((num_bits + 63) / 64, all_set ? ~uint64_t{0} : uint64_t{0}) {
  if (all_set) ClearTail();
}

void KeyBitmap::Resize(size_t num_bits) {
  num_bits_ = num_bits;
  words_.resize((num_bits + 63) / 64, uint64_t{0});
  ClearTail();
}

void KeyBitmap::ClearTail() {
  size_t tail = num_bits_ & 63;
  if (tail != 0 && !words_.empty()) {
    words_.back() &= (uint64_t{1} << tail) - 1;
  }
}

size_t KeyBitmap::Count() const {
  size_t count = 0;
  for (uint64_t word : words_) {
    count += static_cast<size_t>(std::popcount(word));
  }
  return count;
}

bool KeyBitmap::Any() const {
  for (uint64_t word : words_) {
    if (word != 0) return true;
  }
  return false;
}

void KeyBitmap::AndWith(const KeyBitmap& other) {
  assert(num_bits_ == other.num_bits_);
  for (size_t w = 0; w < words_.size(); ++w) words_[w] &= other.words_[w];
}

void KeyBitmap::OrWith(const KeyBitmap& other) {
  assert(num_bits_ == other.num_bits_);
  for (size_t w = 0; w < words_.size(); ++w) words_[w] |= other.words_[w];
}

void KeyBitmap::AndNotWith(const KeyBitmap& other) {
  assert(num_bits_ == other.num_bits_);
  for (size_t w = 0; w < words_.size(); ++w) words_[w] &= ~other.words_[w];
}

void KeyBitmap::FlipAll() {
  for (uint64_t& word : words_) word = ~word;
  ClearTail();
}

size_t KeyBitmap::AndCount(const KeyBitmap& a, const KeyBitmap& b) {
  assert(a.num_bits_ == b.num_bits_);
  size_t count = 0;
  for (size_t w = 0; w < a.words_.size(); ++w) {
    count += static_cast<size_t>(std::popcount(a.words_[w] & b.words_[w]));
  }
  return count;
}

size_t KeyBitmap::AndCountMulti(const KeyBitmap* const* operands, size_t n) {
  if (n == 0) return 0;
  if (n == 1) return operands[0]->Count();
  size_t num_words = operands[0]->words_.size();
  size_t count = 0;
  for (size_t w = 0; w < num_words; ++w) {
    uint64_t acc = operands[0]->words_[w];
    for (size_t k = 1; k < n && acc != 0; ++k) {
      assert(operands[k]->num_bits_ == operands[0]->num_bits_);
      acc &= operands[k]->words_[w];
    }
    count += static_cast<size_t>(std::popcount(acc));
  }
  return count;
}

bool KeyBitmap::Intersects(const KeyBitmap& a, const KeyBitmap& b) {
  assert(a.num_bits_ == b.num_bits_);
  for (size_t w = 0; w < a.words_.size(); ++w) {
    if ((a.words_[w] & b.words_[w]) != 0) return true;
  }
  return false;
}

std::vector<uint32_t> KeyBitmap::ToIds() const {
  std::vector<uint32_t> ids;
  ids.reserve(Count());
  ForEachSet([&](uint32_t id) { ids.push_back(id); });
  return ids;
}

}  // namespace core
}  // namespace hypre
