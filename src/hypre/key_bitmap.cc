#include "hypre/key_bitmap.h"

#include <cstring>

#include "hypre/parallel/task_pool.h"
#include "hypre/parallel/word_kernels.h"

namespace hypre {
namespace core {

namespace {

// First-touch zeroing grain: 512 words = 4 KiB = one page, so page placement
// follows the zeroing worker exactly.
constexpr size_t kZeroGrainWords = 512;

}  // namespace

KeyBitmap::KeyBitmap(size_t num_bits, bool all_set)
    : num_bits_(num_bits),
      words_((num_bits + 63) / 64, all_set ? ~uint64_t{0} : uint64_t{0}) {
  if (all_set) ClearTail();
}

KeyBitmap::KeyBitmap(size_t num_bits, parallel::TaskPool* pool,
                     size_t max_workers)
    : num_bits_(num_bits) {
  size_t num_words = (num_bits + 63) / 64;
  // Default-init resize: the aligned allocator's zero-arg construct is a
  // no-op, so no page is touched here.
  words_.resize(num_words);
  uint64_t* data = words_.data();
  if (pool != nullptr && num_words > kZeroGrainWords) {
    pool->ParallelFor(num_words, kZeroGrainWords, max_workers,
                      [data](size_t begin, size_t end, size_t /*slot*/) {
                        std::memset(data + begin, 0,
                                    (end - begin) * sizeof(uint64_t));
                      });
  } else if (num_words > 0) {
    std::memset(data, 0, num_words * sizeof(uint64_t));
  }
}

void KeyBitmap::Resize(size_t num_bits) {
  num_bits_ = num_bits;
  words_.resize((num_bits + 63) / 64, uint64_t{0});
  ClearTail();
}

void KeyBitmap::ClearTail() {
  size_t tail = num_bits_ & 63;
  if (tail != 0 && !words_.empty()) {
    words_.back() &= (uint64_t{1} << tail) - 1;
  }
}

size_t KeyBitmap::Count() const {
  return parallel::ActiveWordKernels().popcount(words_.data(), words_.size());
}

bool KeyBitmap::Any() const {
  for (uint64_t word : words_) {
    if (word != 0) return true;
  }
  return false;
}

void KeyBitmap::AndWith(const KeyBitmap& other) {
  assert(num_bits_ == other.num_bits_);
  parallel::ActiveWordKernels().and_into(words_.data(), other.words_.data(),
                                         words_.size());
}

void KeyBitmap::OrWith(const KeyBitmap& other) {
  assert(num_bits_ == other.num_bits_);
  parallel::ActiveWordKernels().or_into(words_.data(), other.words_.data(),
                                        words_.size());
}

void KeyBitmap::AndNotWith(const KeyBitmap& other) {
  assert(num_bits_ == other.num_bits_);
  parallel::ActiveWordKernels().andnot_into(words_.data(), other.words_.data(),
                                            words_.size());
}

void KeyBitmap::FlipAll() {
  for (uint64_t& word : words_) word = ~word;
  ClearTail();
}

size_t KeyBitmap::AndCount(const KeyBitmap& a, const KeyBitmap& b) {
  assert(a.num_bits_ == b.num_bits_);
  return parallel::ActiveWordKernels().and_count(a.words_.data(),
                                                 b.words_.data(),
                                                 a.words_.size());
}

size_t KeyBitmap::AndCountMulti(const KeyBitmap* const* operands, size_t n) {
  if (n == 0) return 0;
  if (n == 1) return operands[0]->Count();
#ifndef NDEBUG
  for (size_t k = 1; k < n; ++k) {
    assert(operands[k]->num_bits_ == operands[0]->num_bits_);
  }
#endif
  const uint64_t* ops[8];
  size_t num_words = operands[0]->words_.size();
  if (n <= 8) {
    for (size_t k = 0; k < n; ++k) ops[k] = operands[k]->words_.data();
    return parallel::ActiveWordKernels().and_count_multi(ops, n, num_words);
  }
  std::vector<const uint64_t*> big(n);
  for (size_t k = 0; k < n; ++k) big[k] = operands[k]->words_.data();
  return parallel::ActiveWordKernels().and_count_multi(big.data(), n,
                                                       num_words);
}

bool KeyBitmap::Intersects(const KeyBitmap& a, const KeyBitmap& b) {
  assert(a.num_bits_ == b.num_bits_);
  for (size_t w = 0; w < a.words_.size(); ++w) {
    if ((a.words_[w] & b.words_[w]) != 0) return true;
  }
  return false;
}

std::vector<uint32_t> KeyBitmap::ToIds() const {
  std::vector<uint32_t> ids;
  ids.reserve(Count());
  ForEachSet([&](uint32_t id) { ids.push_back(id); });
  return ids;
}

}  // namespace core
}  // namespace hypre
