#include "hypre/context.h"

#include <algorithm>

#include "common/string_util.h"

namespace hypre {
namespace core {

bool Covers(const ContextState& general, const ContextState& specific) {
  if (general.size() != specific.size()) return false;
  for (size_t i = 0; i < general.size(); ++i) {
    if (general[i] != kContextAll && general[i] != specific[i]) return false;
  }
  return true;
}

Status ContextualProfile::ValidateState(const ContextState& state,
                                        bool allow_all) const {
  if (state.size() != attributes_.size()) {
    return Status::InvalidArgument(StringFormat(
        "context state has %zu attributes, profile has %zu", state.size(),
        attributes_.size()));
  }
  for (const auto& value : state) {
    if (value.empty()) {
      return Status::InvalidArgument("empty context attribute value");
    }
    if (!allow_all && value == kContextAll) {
      return Status::InvalidArgument(
          "a concrete situation cannot contain ALL");
    }
  }
  return Status::OK();
}

size_t ContextualProfile::Specificity(const ContextState& state) {
  size_t n = 0;
  for (const auto& value : state) {
    if (value != kContextAll) ++n;
  }
  return n;
}

Status ContextualProfile::AddContextPreference(
    const ContextState& state, QuantitativePreference preference) {
  HYPRE_RETURN_NOT_OK(ValidateState(state, /*allow_all=*/true));
  for (auto& entry : entries_) {
    if (entry.state == state) {
      entry.preferences.push_back(std::move(preference));
      return Status::OK();
    }
  }
  StateEntry entry;
  entry.state = state;
  entry.preferences.push_back(std::move(preference));
  entries_.push_back(std::move(entry));
  return Status::OK();
}

std::vector<ContextState> ContextualProfile::States() const {
  std::vector<ContextState> out;
  out.reserve(entries_.size());
  for (const auto& entry : entries_) out.push_back(entry.state);
  return out;
}

std::vector<std::pair<size_t, size_t>> ContextualProfile::TightCoverEdges()
    const {
  // Edge (i, j): entries_[j] covers entries_[i] (i more specific), and no
  // entry k sits strictly between them.
  std::vector<std::pair<size_t, size_t>> edges;
  for (size_t i = 0; i < entries_.size(); ++i) {
    for (size_t j = 0; j < entries_.size(); ++j) {
      if (i == j) continue;
      if (!Covers(entries_[j].state, entries_[i].state)) continue;
      if (Covers(entries_[i].state, entries_[j].state)) continue;  // equal
      bool tight = true;
      for (size_t k = 0; k < entries_.size() && tight; ++k) {
        if (k == i || k == j) continue;
        if (Covers(entries_[j].state, entries_[k].state) &&
            Covers(entries_[k].state, entries_[i].state) &&
            !Covers(entries_[k].state, entries_[j].state) &&
            !Covers(entries_[i].state, entries_[k].state)) {
          tight = false;
        }
      }
      if (tight) edges.emplace_back(i, j);
    }
  }
  return edges;
}

Result<std::vector<QuantitativePreference>> ContextualProfile::Resolve(
    const ContextState& concrete) const {
  HYPRE_RETURN_NOT_OK(ValidateState(concrete, /*allow_all=*/false));
  // Matching entries sorted by descending specificity, stable on insertion.
  std::vector<const StateEntry*> matching;
  for (const auto& entry : entries_) {
    if (Covers(entry.state, concrete)) matching.push_back(&entry);
  }
  std::stable_sort(matching.begin(), matching.end(),
                   [](const StateEntry* a, const StateEntry* b) {
                     return Specificity(a->state) > Specificity(b->state);
                   });
  std::vector<QuantitativePreference> out;
  for (const StateEntry* entry : matching) {
    out.insert(out.end(), entry->preferences.begin(),
               entry->preferences.end());
  }
  return out;
}

Result<std::vector<QuantitativePreference>>
ContextualProfile::ResolveMostSpecific(const ContextState& concrete) const {
  HYPRE_RETURN_NOT_OK(ValidateState(concrete, /*allow_all=*/false));
  size_t best = 0;
  bool found = false;
  for (const auto& entry : entries_) {
    if (!Covers(entry.state, concrete)) continue;
    best = std::max(best, Specificity(entry.state));
    found = true;
  }
  std::vector<QuantitativePreference> out;
  if (!found) return out;
  for (const auto& entry : entries_) {
    if (Covers(entry.state, concrete) && Specificity(entry.state) == best) {
      out.insert(out.end(), entry.preferences.begin(),
                 entry.preferences.end());
    }
  }
  return out;
}

}  // namespace core
}  // namespace hypre
