#include "graphdb/cypher_lite.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>

#include "common/string_util.h"

namespace hypre {
namespace graphdb {
namespace {

// --- lexer -------------------------------------------------------------

enum class Tok {
  kIdent,
  kInt,
  kReal,
  kString,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kLParen,
  kRParen,
  kComma,
  kDot,
  kColon,
  kStar,
  kArrowOut,   // -[:TYPE]->   (emitted as kEdgeOut with the type text)
  kEdgeOut,    // full out-edge pattern token
  kEdgeIn,     // full in-edge pattern token <-[:TYPE]-
  kLBrace,     // {
  kRBrace,     // }
  kEnd,
};

struct Token {
  Tok type;
  std::string text;
  int64_t int_value = 0;
  double real_value = 0.0;
};

Result<std::vector<Token>> Lex(const std::string& in) {
  std::vector<Token> out;
  size_t i = 0;
  auto fail = [&](const std::string& what) {
    return Status::ParseError(
        StringFormat("cypher: %s at offset %zu", what.c_str(), i));
  };
  while (i < in.size()) {
    char c = in[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '\'' || c == '"') {
      char quote = c;
      size_t j = i + 1;
      std::string content;
      while (j < in.size() && in[j] != quote) content.push_back(in[j++]);
      if (j >= in.size()) return fail("unterminated string");
      out.push_back({Tok::kString, std::move(content), 0, 0.0});
      i = j + 1;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && i + 1 < in.size() &&
         std::isdigit(static_cast<unsigned char>(in[i + 1])) &&
         // Distinguish a negative literal from the '-[' edge pattern and the
         // trailing '-' of '<-[:T]-'.
         (out.empty() || out.back().type == Tok::kEq ||
          out.back().type == Tok::kNe || out.back().type == Tok::kLt ||
          out.back().type == Tok::kLe || out.back().type == Tok::kGt ||
          out.back().type == Tok::kGe || out.back().type == Tok::kLParen ||
          out.back().type == Tok::kComma))) {
      size_t j = i;
      if (in[j] == '-') ++j;
      bool real = false;
      while (j < in.size() &&
             (std::isdigit(static_cast<unsigned char>(in[j])) ||
              in[j] == '.')) {
        if (in[j] == '.') real = true;
        ++j;
      }
      Token tok;
      tok.text = in.substr(i, j - i);
      if (real) {
        tok.type = Tok::kReal;
        tok.real_value = std::strtod(tok.text.c_str(), nullptr);
      } else {
        tok.type = Tok::kInt;
        tok.int_value = std::strtoll(tok.text.c_str(), nullptr, 10);
      }
      out.push_back(std::move(tok));
      i = j;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t j = i;
      while (j < in.size() &&
             (std::isalnum(static_cast<unsigned char>(in[j])) ||
              in[j] == '_')) {
        ++j;
      }
      out.push_back({Tok::kIdent, in.substr(i, j - i), 0, 0.0});
      i = j;
      continue;
    }
    if (c == '-' || c == '<') {
      // Edge patterns:  -[:TYPE]->   or   <-[:TYPE]-
      bool incoming = (c == '<');
      size_t j = i + (incoming ? 1 : 0);
      if (j >= in.size() || in[j] != '-') return fail("malformed edge pattern");
      ++j;
      if (j >= in.size() || in[j] != '[') return fail("expected '['");
      ++j;
      if (j >= in.size() || in[j] != ':') return fail("expected ':'");
      ++j;
      std::string type;
      while (j < in.size() && in[j] != ']') type.push_back(in[j++]);
      if (j >= in.size()) return fail("expected ']'");
      ++j;
      if (j >= in.size() || in[j] != '-') return fail("expected '-'");
      ++j;
      if (!incoming) {
        if (j >= in.size() || in[j] != '>') return fail("expected '>'");
        ++j;
      }
      out.push_back({incoming ? Tok::kEdgeIn : Tok::kEdgeOut, std::move(type),
                     0, 0.0});
      i = j;
      continue;
    }
    switch (c) {
      case '=':
        out.push_back({Tok::kEq, "=", 0, 0.0});
        ++i;
        break;
      case '!':
        if (i + 1 < in.size() && in[i + 1] == '=') {
          out.push_back({Tok::kNe, "!=", 0, 0.0});
          i += 2;
        } else {
          return fail("unexpected '!'");
        }
        break;
      case '>':
        if (i + 1 < in.size() && in[i + 1] == '=') {
          out.push_back({Tok::kGe, ">=", 0, 0.0});
          i += 2;
        } else {
          out.push_back({Tok::kGt, ">", 0, 0.0});
          ++i;
        }
        break;
      case '(':
        out.push_back({Tok::kLParen, "(", 0, 0.0});
        ++i;
        break;
      case ')':
        out.push_back({Tok::kRParen, ")", 0, 0.0});
        ++i;
        break;
      case ',':
        out.push_back({Tok::kComma, ",", 0, 0.0});
        ++i;
        break;
      case '.':
        out.push_back({Tok::kDot, ".", 0, 0.0});
        ++i;
        break;
      case ':':
        out.push_back({Tok::kColon, ":", 0, 0.0});
        ++i;
        break;
      case '*':
        out.push_back({Tok::kStar, "*", 0, 0.0});
        ++i;
        break;
      case '{':
        out.push_back({Tok::kLBrace, "{", 0, 0.0});
        ++i;
        break;
      case '}':
        out.push_back({Tok::kRBrace, "}", 0, 0.0});
        ++i;
        break;
      default:
        return fail(StringFormat("unexpected character '%c'", c));
    }
  }
  out.push_back({Tok::kEnd, "", 0, 0.0});
  return out;
}

// --- AST ----------------------------------------------------------------

enum class CmpOp { kEq, kNe, kLt, kLe, kGt, kGe };

struct StartClause {
  std::string var;
  bool all_nodes = false;
  bool by_id = false;
  NodeId id = kInvalidNode;
  // index lookup
  std::string index_label;
  std::string index_prop;
  PropertyValue index_value;
};

struct MatchClause {
  bool present = false;
  std::string from_var;  // variable already bound by START
  std::string to_var;    // new variable bound by the pattern
  std::string edge_type;
  bool outgoing = true;  // from -[:T]-> to  vs  from <-[:T]- to
};

struct WhereCond {
  std::string var;
  std::string prop;
  CmpOp op;
  PropertyValue value;
};

struct ReturnItem {
  bool is_id = false;  // id(var)
  std::string var;
  std::string prop;  // for var.prop
  std::string alias;
};

struct CypherQuery {
  StartClause start;
  MatchClause match;
  std::vector<WhereCond> where;
  std::vector<ReturnItem> ret;
  bool has_order = false;
  std::string order_var;
  std::string order_prop;
  bool order_desc = false;
  size_t skip = 0;
  size_t limit = 0;  // 0 = unlimited
};

// --- parser ---------------------------------------------------------------

class Parser {
 public:
  explicit Parser(std::vector<Token> toks) : toks_(std::move(toks)) {}

  Result<CypherQuery> Parse() {
    CypherQuery q;
    HYPRE_RETURN_NOT_OK(ExpectKeyword("START"));
    HYPRE_RETURN_NOT_OK(ParseStart(&q.start));
    if (PeekKeyword("MATCH")) {
      ++pos_;
      HYPRE_RETURN_NOT_OK(ParseMatch(&q));
    }
    if (PeekKeyword("WHERE")) {
      ++pos_;
      HYPRE_RETURN_NOT_OK(ParseWhere(&q));
    }
    HYPRE_RETURN_NOT_OK(ExpectKeyword("RETURN"));
    HYPRE_RETURN_NOT_OK(ParseReturn(&q));
    if (PeekKeyword("ORDER")) {
      ++pos_;
      HYPRE_RETURN_NOT_OK(ExpectKeyword("BY"));
      q.has_order = true;
      HYPRE_RETURN_NOT_OK(ParseVarProp(&q.order_var, &q.order_prop));
      if (PeekKeyword("DESC")) {
        q.order_desc = true;
        ++pos_;
      } else if (PeekKeyword("ASC")) {
        ++pos_;
      }
    }
    if (PeekKeyword("SKIP")) {
      ++pos_;
      if (Peek().type != Tok::kInt) return Err("expected an integer");
      q.skip = static_cast<size_t>(Next().int_value);
    }
    if (PeekKeyword("LIMIT")) {
      ++pos_;
      if (Peek().type != Tok::kInt) return Err("expected an integer");
      q.limit = static_cast<size_t>(Next().int_value);
    }
    if (Peek().type != Tok::kEnd) return Err("trailing tokens");
    return q;
  }

 private:
  const Token& Peek() const { return toks_[pos_]; }
  const Token& Next() { return toks_[pos_++]; }
  bool PeekKeyword(const char* kw) const {
    return Peek().type == Tok::kIdent && EqualsIgnoreCase(Peek().text, kw);
  }
  Status ExpectKeyword(const char* kw) {
    if (!PeekKeyword(kw)) {
      return Status::ParseError(StringFormat("cypher: expected %s", kw));
    }
    ++pos_;
    return Status::OK();
  }
  Status Err(const std::string& what) const {
    return Status::ParseError("cypher: " + what);
  }

  Result<PropertyValue> ParseLiteral() {
    const Token& tok = Peek();
    switch (tok.type) {
      case Tok::kInt:
        ++pos_;
        return PropertyValue(tok.int_value);
      case Tok::kReal:
        ++pos_;
        return PropertyValue(tok.real_value);
      case Tok::kString:
        ++pos_;
        return PropertyValue(tok.text);
      case Tok::kIdent:
        if (EqualsIgnoreCase(tok.text, "true")) {
          ++pos_;
          return PropertyValue(true);
        }
        if (EqualsIgnoreCase(tok.text, "false")) {
          ++pos_;
          return PropertyValue(false);
        }
        return Err("expected a literal");
      default:
        return Err("expected a literal");
    }
  }

  Status ParseVarProp(std::string* var, std::string* prop) {
    if (Peek().type != Tok::kIdent) return Err("expected a variable");
    *var = Next().text;
    if (Peek().type != Tok::kDot) return Err("expected '.'");
    ++pos_;
    if (Peek().type != Tok::kIdent) return Err("expected a property name");
    *prop = Next().text;
    return Status::OK();
  }

  Status ParseStart(StartClause* start) {
    if (Peek().type != Tok::kIdent) return Err("expected a variable");
    start->var = Next().text;
    if (Peek().type != Tok::kEq) return Err("expected '='");
    ++pos_;
    if (!PeekKeyword("node")) return Err("expected node(...)");
    ++pos_;
    if (Peek().type == Tok::kColon) {
      // node:<label>(<prop> = <literal>)
      ++pos_;
      if (Peek().type != Tok::kIdent) return Err("expected an index label");
      start->index_label = Next().text;
      if (Peek().type != Tok::kLParen) return Err("expected '('");
      ++pos_;
      if (Peek().type != Tok::kIdent) return Err("expected a property");
      start->index_prop = Next().text;
      if (Peek().type != Tok::kEq) return Err("expected '='");
      ++pos_;
      HYPRE_ASSIGN_OR_RETURN(start->index_value, ParseLiteral());
      if (Peek().type != Tok::kRParen) return Err("expected ')'");
      ++pos_;
      return Status::OK();
    }
    if (Peek().type != Tok::kLParen) return Err("expected '('");
    ++pos_;
    if (Peek().type == Tok::kStar) {
      start->all_nodes = true;
      ++pos_;
    } else if (Peek().type == Tok::kInt) {
      start->by_id = true;
      start->id = static_cast<NodeId>(Next().int_value);
    } else {
      return Err("expected '*' or a node id");
    }
    if (Peek().type != Tok::kRParen) return Err("expected ')'");
    ++pos_;
    return Status::OK();
  }

  Status ParseMatch(CypherQuery* q) {
    q->match.present = true;
    if (Peek().type != Tok::kIdent) return Err("expected a variable");
    std::string first = Next().text;
    if (Peek().type == Tok::kEdgeOut) {
      q->match.outgoing = true;
      q->match.edge_type = Next().text;
    } else if (Peek().type == Tok::kEdgeIn) {
      q->match.outgoing = false;
      q->match.edge_type = Next().text;
    } else {
      return Err("expected an edge pattern");
    }
    if (Peek().type != Tok::kIdent) return Err("expected a variable");
    std::string second = Next().text;
    q->match.from_var = first;
    q->match.to_var = second;
    return Status::OK();
  }

  Status ParseWhere(CypherQuery* q) {
    for (;;) {
      WhereCond cond;
      HYPRE_RETURN_NOT_OK(ParseVarProp(&cond.var, &cond.prop));
      switch (Peek().type) {
        case Tok::kEq:
          cond.op = CmpOp::kEq;
          break;
        case Tok::kNe:
          cond.op = CmpOp::kNe;
          break;
        case Tok::kLt:
          cond.op = CmpOp::kLt;
          break;
        case Tok::kLe:
          cond.op = CmpOp::kLe;
          break;
        case Tok::kGt:
          cond.op = CmpOp::kGt;
          break;
        case Tok::kGe:
          cond.op = CmpOp::kGe;
          break;
        default:
          return Err("expected a comparison operator");
      }
      ++pos_;
      HYPRE_ASSIGN_OR_RETURN(cond.value, ParseLiteral());
      q->where.push_back(std::move(cond));
      if (PeekKeyword("AND")) {
        ++pos_;
        continue;
      }
      break;
    }
    return Status::OK();
  }

  Status ParseReturn(CypherQuery* q) {
    for (;;) {
      ReturnItem item;
      if (PeekKeyword("id")) {
        // id(<var>)
        size_t save = pos_;
        ++pos_;
        if (Peek().type == Tok::kLParen) {
          ++pos_;
          if (Peek().type != Tok::kIdent) return Err("expected a variable");
          item.is_id = true;
          item.var = Next().text;
          if (Peek().type != Tok::kRParen) return Err("expected ')'");
          ++pos_;
          item.alias = "id(" + item.var + ")";
        } else {
          pos_ = save;  // treat "id" as a plain variable name
        }
      }
      if (!item.is_id) {
        HYPRE_RETURN_NOT_OK(ParseVarProp(&item.var, &item.prop));
        item.alias = item.var + "." + item.prop;
      }
      if (PeekKeyword("as")) {
        ++pos_;
        if (Peek().type != Tok::kIdent) return Err("expected an alias");
        item.alias = Next().text;
      }
      q->ret.push_back(std::move(item));
      if (Peek().type == Tok::kComma) {
        ++pos_;
        continue;
      }
      break;
    }
    return Status::OK();
  }

  std::vector<Token> toks_;
  size_t pos_ = 0;
};

// --- evaluator --------------------------------------------------------------

bool ApplyCmp(CmpOp op, const PropertyValue& a, const PropertyValue& b) {
  if (a.is_null() || b.is_null()) return false;
  int c = a.Compare(b);
  switch (op) {
    case CmpOp::kEq:
      return c == 0;
    case CmpOp::kNe:
      return c != 0;
    case CmpOp::kLt:
      return c < 0;
    case CmpOp::kLe:
      return c <= 0;
    case CmpOp::kGt:
      return c > 0;
    case CmpOp::kGe:
      return c >= 0;
  }
  return false;
}

struct Binding {
  NodeId nodes[2] = {kInvalidNode, kInvalidNode};  // [0]=start var, [1]=match
};

}  // namespace

Result<CypherResult> RunCypher(const GraphStore& store,
                               const std::string& query) {
  HYPRE_ASSIGN_OR_RETURN(std::vector<Token> toks, Lex(query));
  Parser parser(std::move(toks));
  HYPRE_ASSIGN_OR_RETURN(CypherQuery q, parser.Parse());

  auto var_slot = [&](const std::string& var) -> Result<int> {
    if (var == q.start.var) return 0;
    if (q.match.present && var == q.match.to_var) return 1;
    return Status::ParseError("cypher: unbound variable '" + var + "'");
  };

  // Enumerate start nodes.
  std::vector<NodeId> start_nodes;
  if (q.start.all_nodes) {
    store.ForEachNode([&](const Node& n) { start_nodes.push_back(n.id); });
  } else if (q.start.by_id) {
    if (store.NodeExists(q.start.id)) start_nodes.push_back(q.start.id);
  } else {
    HYPRE_ASSIGN_OR_RETURN(
        start_nodes, store.FindNodes(q.start.index_label, q.start.index_prop,
                                     q.start.index_value));
  }

  // Expand MATCH.
  std::vector<Binding> bindings;
  if (q.match.present) {
    if (q.match.from_var != q.start.var) {
      return Status::ParseError(
          "cypher: MATCH must start from the START variable");
    }
    for (NodeId n : start_nodes) {
      if (q.match.outgoing) {
        for (EdgeId eid : store.OutEdges(n, q.match.edge_type)) {
          Binding b;
          b.nodes[0] = n;
          b.nodes[1] = store.GetEdge(eid).value()->dst;
          bindings.push_back(b);
        }
      } else {
        for (EdgeId eid : store.InEdges(n, q.match.edge_type)) {
          Binding b;
          b.nodes[0] = n;
          b.nodes[1] = store.GetEdge(eid).value()->src;
          bindings.push_back(b);
        }
      }
    }
  } else {
    for (NodeId n : start_nodes) {
      Binding b;
      b.nodes[0] = n;
      bindings.push_back(b);
    }
  }

  // WHERE filter.
  std::vector<Binding> filtered;
  for (const Binding& b : bindings) {
    bool keep = true;
    for (const WhereCond& cond : q.where) {
      HYPRE_ASSIGN_OR_RETURN(int slot, var_slot(cond.var));
      auto value = store.GetNodeProperty(b.nodes[slot], cond.prop);
      if (!value || !ApplyCmp(cond.op, *value, cond.value)) {
        keep = false;
        break;
      }
    }
    if (keep) filtered.push_back(b);
  }

  // ORDER BY.
  if (q.has_order) {
    HYPRE_ASSIGN_OR_RETURN(int slot, var_slot(q.order_var));
    std::stable_sort(
        filtered.begin(), filtered.end(),
        [&](const Binding& a, const Binding& b) {
          auto va = store.GetNodeProperty(a.nodes[slot], q.order_prop);
          auto vb = store.GetNodeProperty(b.nodes[slot], q.order_prop);
          PropertyValue pa = va ? *va : PropertyValue();
          PropertyValue pb = vb ? *vb : PropertyValue();
          int c = pa.Compare(pb);
          return q.order_desc ? c > 0 : c < 0;
        });
  }

  // SKIP / LIMIT.
  size_t begin = std::min(q.skip, filtered.size());
  size_t end = filtered.size();
  if (q.limit > 0) end = std::min(end, begin + q.limit);

  // Projection.
  CypherResult result;
  for (const ReturnItem& item : q.ret) result.columns.push_back(item.alias);
  for (size_t i = begin; i < end; ++i) {
    std::vector<PropertyValue> row;
    for (const ReturnItem& item : q.ret) {
      HYPRE_ASSIGN_OR_RETURN(int slot, var_slot(item.var));
      NodeId node = filtered[i].nodes[slot];
      if (item.is_id) {
        row.emplace_back(static_cast<int64_t>(node));
      } else {
        auto value = store.GetNodeProperty(node, item.prop);
        row.push_back(value ? *value : PropertyValue());
      }
    }
    result.rows.push_back(std::move(row));
  }
  return result;
}

namespace {

/// Mutation-statement parser (CREATE / SET / DELETE).
class MutateParser {
 public:
  MutateParser(GraphStore* store, std::vector<Token> toks)
      : store_(store), toks_(std::move(toks)) {}

  Result<CypherResult> Run() {
    if (PeekKeyword("CREATE")) {
      ++pos_;
      return ParseCreate();
    }
    // START n=node(<id>) SET/DELETE ...
    if (!PeekKeyword("START")) {
      return Status::ParseError("cypher: expected CREATE or START");
    }
    ++pos_;
    if (Peek().type != Tok::kIdent) return Err("expected a variable");
    std::string var = Next().text;
    if (Next().type != Tok::kEq) return Err("expected '='");
    if (!PeekKeyword("node")) return Err("expected node(<id>)");
    ++pos_;
    if (Next().type != Tok::kLParen) return Err("expected '('");
    if (Peek().type != Tok::kInt) return Err("expected a node id");
    NodeId id = static_cast<NodeId>(Next().int_value);
    if (Next().type != Tok::kRParen) return Err("expected ')'");
    if (PeekKeyword("SET")) {
      ++pos_;
      return ParseSet(var, id);
    }
    if (PeekKeyword("DELETE")) {
      ++pos_;
      if (Peek().type != Tok::kIdent || Next().text != var) {
        return Err("DELETE must name the START variable");
      }
      HYPRE_RETURN_NOT_OK(ExpectEnd());
      HYPRE_RETURN_NOT_OK(store_->RemoveNode(id));
      return IdResult("id(" + var + ")", static_cast<int64_t>(id));
    }
    return Err("expected SET or DELETE");
  }

 private:
  const Token& Peek() const { return toks_[pos_]; }
  const Token& Next() { return toks_[pos_++]; }
  bool PeekKeyword(const char* kw) const {
    return Peek().type == Tok::kIdent && EqualsIgnoreCase(Peek().text, kw);
  }
  Status Err(const std::string& what) const {
    return Status::ParseError("cypher: " + what);
  }
  Status ExpectEnd() {
    if (Peek().type != Tok::kEnd) return Err("trailing tokens");
    return Status::OK();
  }
  static CypherResult IdResult(std::string column, int64_t id) {
    CypherResult result;
    result.columns.push_back(std::move(column));
    result.rows.push_back({PropertyValue(id)});
    return result;
  }

  Result<PropertyValue> ParseLiteral() {
    const Token& tok = Peek();
    switch (tok.type) {
      case Tok::kInt:
        ++pos_;
        return PropertyValue(tok.int_value);
      case Tok::kReal:
        ++pos_;
        return PropertyValue(tok.real_value);
      case Tok::kString:
        ++pos_;
        return PropertyValue(tok.text);
      case Tok::kIdent:
        if (EqualsIgnoreCase(tok.text, "true")) {
          ++pos_;
          return PropertyValue(true);
        }
        if (EqualsIgnoreCase(tok.text, "false")) {
          ++pos_;
          return PropertyValue(false);
        }
        return Err("expected a literal");
      default:
        return Err("expected a literal");
    }
  }

  /// `{key: literal, ...}`; the leading '{' must be current.
  Result<PropertyMap> ParseMap() {
    PropertyMap props;
    if (Next().type != Tok::kLBrace) return Err("expected '{'");
    if (Peek().type == Tok::kRBrace) {
      ++pos_;
      return props;
    }
    for (;;) {
      if (Peek().type != Tok::kIdent) return Err("expected a property name");
      std::string key = Next().text;
      if (Next().type != Tok::kColon) return Err("expected ':'");
      HYPRE_ASSIGN_OR_RETURN(PropertyValue value, ParseLiteral());
      props[key] = std::move(value);
      if (Peek().type == Tok::kComma) {
        ++pos_;
        continue;
      }
      break;
    }
    if (Next().type != Tok::kRBrace) return Err("expected '}'");
    return props;
  }

  Result<CypherResult> ParseCreate() {
    if (Next().type != Tok::kLParen) return Err("expected '('");
    if (Peek().type == Tok::kInt) {
      // Edge creation: (<id>) -[:TYPE]-> (<id>) [{props}]
      NodeId src = static_cast<NodeId>(Next().int_value);
      if (Next().type != Tok::kRParen) return Err("expected ')'");
      if (Peek().type != Tok::kEdgeOut) {
        return Err("expected an outgoing edge pattern");
      }
      std::string type = Next().text;
      if (Next().type != Tok::kLParen) return Err("expected '('");
      if (Peek().type != Tok::kInt) return Err("expected a node id");
      NodeId dst = static_cast<NodeId>(Next().int_value);
      if (Next().type != Tok::kRParen) return Err("expected ')'");
      PropertyMap props;
      if (Peek().type == Tok::kLBrace) {
        HYPRE_ASSIGN_OR_RETURN(props, ParseMap());
      }
      HYPRE_RETURN_NOT_OK(ExpectEnd());
      HYPRE_ASSIGN_OR_RETURN(EdgeId edge,
                             store_->AddEdge(src, dst, type,
                                             std::move(props)));
      return IdResult("id(e)", static_cast<int64_t>(edge));
    }
    // Node creation: (n:Label1:Label2 {props})
    if (Peek().type != Tok::kIdent) return Err("expected a variable");
    std::string var = Next().text;
    std::vector<std::string> labels;
    while (Peek().type == Tok::kColon) {
      ++pos_;
      if (Peek().type != Tok::kIdent) return Err("expected a label");
      labels.push_back(Next().text);
    }
    PropertyMap props;
    if (Peek().type == Tok::kLBrace) {
      HYPRE_ASSIGN_OR_RETURN(props, ParseMap());
    }
    if (Next().type != Tok::kRParen) return Err("expected ')'");
    // Optional "RETURN id(<var>)" for Cypher flavor; output is id anyway.
    if (PeekKeyword("RETURN")) {
      ++pos_;
      if (!PeekKeyword("id")) return Err("only RETURN id(var) is supported");
      ++pos_;
      if (Next().type != Tok::kLParen) return Err("expected '('");
      if (Peek().type != Tok::kIdent || Next().text != var) {
        return Err("RETURN must name the created variable");
      }
      if (Next().type != Tok::kRParen) return Err("expected ')'");
    }
    HYPRE_RETURN_NOT_OK(ExpectEnd());
    NodeId id = store_->AddNode(std::move(labels), std::move(props));
    return IdResult("id(" + var + ")", static_cast<int64_t>(id));
  }

  Result<CypherResult> ParseSet(const std::string& var, NodeId id) {
    if (!store_->NodeExists(id)) return Status::NotFound("no such node");
    for (;;) {
      if (Peek().type != Tok::kIdent || Next().text != var) {
        return Err("SET must reference the START variable");
      }
      if (Next().type != Tok::kDot) return Err("expected '.'");
      if (Peek().type != Tok::kIdent) return Err("expected a property name");
      std::string key = Next().text;
      if (Next().type != Tok::kEq) return Err("expected '='");
      HYPRE_ASSIGN_OR_RETURN(PropertyValue value, ParseLiteral());
      HYPRE_RETURN_NOT_OK(store_->SetNodeProperty(id, key, std::move(value)));
      if (Peek().type == Tok::kComma) {
        ++pos_;
        continue;
      }
      break;
    }
    HYPRE_RETURN_NOT_OK(ExpectEnd());
    return IdResult("id(" + var + ")", static_cast<int64_t>(id));
  }

  GraphStore* store_;
  std::vector<Token> toks_;
  size_t pos_ = 0;
};

}  // namespace

Result<CypherResult> RunCypherMutate(GraphStore* store,
                                     const std::string& query) {
  HYPRE_ASSIGN_OR_RETURN(std::vector<Token> toks, Lex(query));
  // Mutation statements start with CREATE, or with START ... SET/DELETE.
  bool is_mutation = false;
  if (!toks.empty() && toks[0].type == Tok::kIdent) {
    if (EqualsIgnoreCase(toks[0].text, "CREATE")) {
      is_mutation = true;
    } else if (EqualsIgnoreCase(toks[0].text, "START")) {
      for (const Token& tok : toks) {
        if (tok.type == Tok::kIdent &&
            (EqualsIgnoreCase(tok.text, "SET") ||
             EqualsIgnoreCase(tok.text, "DELETE"))) {
          is_mutation = true;
          break;
        }
        if (tok.type == Tok::kIdent && EqualsIgnoreCase(tok.text, "RETURN")) {
          break;
        }
      }
    }
  }
  if (!is_mutation) return RunCypher(*store, query);
  MutateParser parser(store, std::move(toks));
  return parser.Run();
}

}  // namespace graphdb
}  // namespace hypre
