// Batched node insertion with per-batch timing.
//
// The dissertation stress-tests Neo4j by inserting nodes in 1M-row batches
// and reporting per-batch wall time (Figure 13). BatchInserter reproduces
// that protocol: nodes are staged and applied per batch, and the caller
// receives one timing sample per flushed batch.
#pragma once

#include <string>
#include <vector>

#include "common/timer.h"
#include "graphdb/graph_store.h"

namespace hypre {
namespace graphdb {

/// \brief One flushed batch's statistics.
struct BatchStats {
  size_t batch_index = 0;
  size_t nodes_inserted = 0;
  double seconds = 0.0;
  size_t total_nodes_after = 0;
};

/// \brief Accumulates staged nodes and applies them to the store in batches
/// of `batch_size`, recording the time of each flush.
class BatchInserter {
 public:
  BatchInserter(GraphStore* store, size_t batch_size)
      : store_(store), batch_size_(batch_size) {
    staged_labels_.reserve(batch_size);
    staged_props_.reserve(batch_size);
  }

  /// \brief Stages one node; flushes automatically when the batch fills.
  void Add(std::vector<std::string> labels, PropertyMap props);

  /// \brief Applies any staged nodes as a final (possibly short) batch.
  void Flush();

  const std::vector<BatchStats>& stats() const { return stats_; }

 private:
  GraphStore* store_;
  size_t batch_size_;
  std::vector<std::vector<std::string>> staged_labels_;
  std::vector<PropertyMap> staged_props_;
  std::vector<BatchStats> stats_;
};

}  // namespace graphdb
}  // namespace hypre
