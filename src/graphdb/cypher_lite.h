// cypher_lite: a small declarative query language over GraphStore.
//
// The dissertation (§4.3) drives Neo4j with CYPHER queries of the shape
//
//   START n=node(*) WHERE n.uid=2
//   RETURN n.preference, n.intensity ORDER BY n.intensity DESC
//
//   START n=node(5) MATCH n -[:PREFERS]-> m
//   RETURN id(n), id(m)
//
//   START n=node:uidIndex(uid=2) RETURN n.predicate
//
// plus node/edge creation and property updates (see RunCypherMutate).
//
// cypher_lite implements exactly that subset:
//   START <var> = node(*) | node(<int>) | node:<label>(<prop>=<literal>)
//   [MATCH <var> -[:TYPE]-> <var2> | <var> <-[:TYPE]- <var2>]
//   [WHERE <var>.<prop> <op> <literal> [AND ...]]
//   RETURN <item> [, <item>]         item := <var>.<prop> | id(<var>)
//   [ORDER BY <var>.<prop> [ASC|DESC]]
//   [SKIP <int>] [LIMIT <int>]
#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "graphdb/graph_store.h"

namespace hypre {
namespace graphdb {

/// \brief Result of a cypher_lite query: column headers plus rows of
/// property values (node ids surface as int properties).
struct CypherResult {
  std::vector<std::string> columns;
  std::vector<std::vector<PropertyValue>> rows;
};

/// \brief Parses and runs a read-only `query` against `store`.
Result<CypherResult> RunCypher(const GraphStore& store,
                               const std::string& query);

/// \brief Parses and runs a mutating statement against `store`:
///   CREATE (n:Label1:Label2 {key: value, ...})      -> returns id(n)
///   CREATE (<id>) -[:TYPE {key: value}]-> (<id>)    -> returns the edge id
///   START n=node(<id>) SET n.<prop> = <literal>     -> returns id(n)
///   START n=node(<id>) DELETE n                     -> returns id(n)
/// Read-only queries are delegated to RunCypher.
Result<CypherResult> RunCypherMutate(GraphStore* store,
                                     const std::string& query);

}  // namespace graphdb
}  // namespace hypre
