#include "graphdb/batch.h"

namespace hypre {
namespace graphdb {

void BatchInserter::Add(std::vector<std::string> labels, PropertyMap props) {
  staged_labels_.push_back(std::move(labels));
  staged_props_.push_back(std::move(props));
  if (staged_labels_.size() >= batch_size_) Flush();
}

void BatchInserter::Flush() {
  if (staged_labels_.empty()) return;
  WallTimer timer;
  for (size_t i = 0; i < staged_labels_.size(); ++i) {
    store_->AddNode(std::move(staged_labels_[i]), std::move(staged_props_[i]));
  }
  BatchStats stats;
  stats.batch_index = stats_.size();
  stats.nodes_inserted = staged_labels_.size();
  stats.seconds = timer.ElapsedSeconds();
  stats.total_nodes_after = store_->num_nodes();
  stats_.push_back(stats);
  staged_labels_.clear();
  staged_props_.clear();
}

}  // namespace graphdb
}  // namespace hypre
