// Typed property values for the embedded property-graph store.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <variant>

namespace hypre {
namespace graphdb {

/// \brief Property value: bool, int64, double, or string (Neo4j-style).
class PropertyValue {
 public:
  PropertyValue() : rep_(std::monostate{}) {}
  explicit PropertyValue(bool v) : rep_(v) {}
  explicit PropertyValue(int64_t v) : rep_(v) {}
  explicit PropertyValue(double v) : rep_(v) {}
  explicit PropertyValue(std::string v) : rep_(std::move(v)) {}
  explicit PropertyValue(const char* v) : rep_(std::string(v)) {}

  bool is_null() const { return rep_.index() == 0; }
  bool is_bool() const { return rep_.index() == 1; }
  bool is_int() const { return rep_.index() == 2; }
  bool is_double() const { return rep_.index() == 3; }
  bool is_string() const { return rep_.index() == 4; }

  bool AsBool() const { return std::get<bool>(rep_); }
  int64_t AsInt() const { return std::get<int64_t>(rep_); }
  double AsDouble() const { return std::get<double>(rep_); }
  const std::string& AsString() const { return std::get<std::string>(rep_); }

  /// \brief Numeric view (int widened); invalid on non-numeric values.
  double NumericValue() const {
    return is_int() ? static_cast<double>(AsInt()) : AsDouble();
  }

  /// \brief Deep equality (type-sensitive except int/double compare
  /// numerically, so index keys behave intuitively).
  bool operator==(const PropertyValue& other) const;
  bool operator!=(const PropertyValue& other) const {
    return !(*this == other);
  }

  /// \brief Total order for ordered retrieval (ORDER BY in cypher_lite).
  /// null < bool < numeric < string.
  int Compare(const PropertyValue& other) const;

  std::string ToString() const;

 private:
  std::variant<std::monostate, bool, int64_t, double, std::string> rep_;
};

/// \brief Property bag keyed by name. std::map keeps iteration deterministic
/// for serialization and tests.
using PropertyMap = std::map<std::string, PropertyValue>;

/// \brief Returns props[key] or nullopt.
std::optional<PropertyValue> GetProperty(const PropertyMap& props,
                                         const std::string& key);

}  // namespace graphdb
}  // namespace hypre
