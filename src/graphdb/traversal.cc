#include "graphdb/traversal.h"

#include <deque>
#include <unordered_map>
#include <unordered_set>

namespace hypre {
namespace graphdb {

bool HasPath(const GraphStore& store, NodeId from, NodeId to,
             const std::string& edge_type) {
  if (!store.NodeExists(from) || !store.NodeExists(to)) return false;
  if (from == to) return true;
  std::unordered_set<NodeId> visited{from};
  std::deque<NodeId> frontier{from};
  while (!frontier.empty()) {
    NodeId current = frontier.front();
    frontier.pop_front();
    for (EdgeId eid : store.OutEdges(current, edge_type)) {
      NodeId next = store.GetEdge(eid).value()->dst;
      if (next == to) return true;
      if (visited.insert(next).second) frontier.push_back(next);
    }
  }
  return false;
}

std::vector<NodeId> ReachableFrom(const GraphStore& store, NodeId start,
                                  const std::string& edge_type) {
  std::vector<NodeId> order;
  if (!store.NodeExists(start)) return order;
  std::unordered_set<NodeId> visited{start};
  std::deque<NodeId> frontier{start};
  while (!frontier.empty()) {
    NodeId current = frontier.front();
    frontier.pop_front();
    order.push_back(current);
    for (EdgeId eid : store.OutEdges(current, edge_type)) {
      NodeId next = store.GetEdge(eid).value()->dst;
      if (visited.insert(next).second) frontier.push_back(next);
    }
  }
  return order;
}

std::vector<NodeId> WeaklyConnectedComponent(const GraphStore& store,
                                             NodeId start,
                                             const std::string& edge_type) {
  std::vector<NodeId> order;
  if (!store.NodeExists(start)) return order;
  std::unordered_set<NodeId> visited{start};
  std::deque<NodeId> frontier{start};
  while (!frontier.empty()) {
    NodeId current = frontier.front();
    frontier.pop_front();
    order.push_back(current);
    for (EdgeId eid : store.OutEdges(current, edge_type)) {
      NodeId next = store.GetEdge(eid).value()->dst;
      if (visited.insert(next).second) frontier.push_back(next);
    }
    for (EdgeId eid : store.InEdges(current, edge_type)) {
      NodeId next = store.GetEdge(eid).value()->src;
      if (visited.insert(next).second) frontier.push_back(next);
    }
  }
  return order;
}

Result<std::vector<NodeId>> TopologicalSort(const GraphStore& store,
                                            const std::vector<NodeId>& nodes,
                                            const std::string& edge_type) {
  std::unordered_set<NodeId> in_set(nodes.begin(), nodes.end());
  std::unordered_map<NodeId, size_t> in_degree;
  for (NodeId id : nodes) in_degree[id] = 0;
  for (NodeId id : nodes) {
    for (EdgeId eid : store.OutEdges(id, edge_type)) {
      NodeId dst = store.GetEdge(eid).value()->dst;
      if (in_set.count(dst) > 0) ++in_degree[dst];
    }
  }
  std::deque<NodeId> ready;
  for (NodeId id : nodes) {
    if (in_degree[id] == 0) ready.push_back(id);
  }
  std::vector<NodeId> order;
  order.reserve(nodes.size());
  while (!ready.empty()) {
    NodeId current = ready.front();
    ready.pop_front();
    order.push_back(current);
    for (EdgeId eid : store.OutEdges(current, edge_type)) {
      NodeId dst = store.GetEdge(eid).value()->dst;
      if (in_set.count(dst) == 0) continue;
      if (--in_degree[dst] == 0) ready.push_back(dst);
    }
  }
  if (order.size() != nodes.size()) {
    return Status::Conflict("subgraph contains a cycle");
  }
  return order;
}

bool IsAcyclic(const GraphStore& store, const std::vector<NodeId>& nodes,
               const std::string& edge_type) {
  return TopologicalSort(store, nodes, edge_type).ok();
}

int ShortestPathLength(const GraphStore& store, NodeId from, NodeId to,
                       const std::string& edge_type) {
  if (!store.NodeExists(from) || !store.NodeExists(to)) return -1;
  if (from == to) return 0;
  std::unordered_map<NodeId, int> dist{{from, 0}};
  std::deque<NodeId> frontier{from};
  while (!frontier.empty()) {
    NodeId current = frontier.front();
    frontier.pop_front();
    for (EdgeId eid : store.OutEdges(current, edge_type)) {
      NodeId next = store.GetEdge(eid).value()->dst;
      if (dist.count(next) > 0) continue;
      dist[next] = dist[current] + 1;
      if (next == to) return dist[next];
      frontier.push_back(next);
    }
  }
  return -1;
}

}  // namespace graphdb
}  // namespace hypre
