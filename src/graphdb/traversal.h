// Graph traversal primitives over GraphStore.
//
// HYPRE's graph-generation algorithm needs exactly these: path existence for
// cycle detection (Algorithm 1 line 6), reachability for subgraph extraction,
// and a topological order of the PREFERS subgraph for analyses.
#pragma once

#include <vector>

#include "common/status.h"
#include "graphdb/graph_store.h"

namespace hypre {
namespace graphdb {

/// \brief True if a directed path from `from` to `to` exists using only
/// edges of `edge_type` ("" = any). A node reaches itself trivially.
bool HasPath(const GraphStore& store, NodeId from, NodeId to,
             const std::string& edge_type = "");

/// \brief All nodes reachable from `start` (including `start`) via edges of
/// `edge_type`, in BFS order.
std::vector<NodeId> ReachableFrom(const GraphStore& store, NodeId start,
                                  const std::string& edge_type = "");

/// \brief All nodes in the weakly connected component of `start`,
/// considering only edges of `edge_type` but ignoring direction.
std::vector<NodeId> WeaklyConnectedComponent(const GraphStore& store,
                                             NodeId start,
                                             const std::string& edge_type = "");

/// \brief Topological ordering of `nodes` w.r.t. `edge_type` edges between
/// them. Fails with Conflict if the induced subgraph has a cycle.
Result<std::vector<NodeId>> TopologicalSort(const GraphStore& store,
                                            const std::vector<NodeId>& nodes,
                                            const std::string& edge_type = "");

/// \brief True if the subgraph induced by `nodes` over `edge_type` edges is
/// acyclic.
bool IsAcyclic(const GraphStore& store, const std::vector<NodeId>& nodes,
               const std::string& edge_type = "");

/// \brief Length (edge count) of the shortest directed path from `from` to
/// `to` via `edge_type` edges, or -1 if unreachable.
int ShortestPathLength(const GraphStore& store, NodeId from, NodeId to,
                       const std::string& edge_type = "");

}  // namespace graphdb
}  // namespace hypre
