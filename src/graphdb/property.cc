#include "graphdb/property.h"

#include "common/string_util.h"

namespace hypre {
namespace graphdb {

namespace {

int TypeRank(const PropertyValue& v) {
  if (v.is_null()) return 0;
  if (v.is_bool()) return 1;
  if (v.is_int() || v.is_double()) return 2;
  return 3;
}

}  // namespace

bool PropertyValue::operator==(const PropertyValue& other) const {
  return Compare(other) == 0;
}

int PropertyValue::Compare(const PropertyValue& other) const {
  int ra = TypeRank(*this);
  int rb = TypeRank(other);
  if (ra != rb) return ra < rb ? -1 : 1;
  switch (ra) {
    case 0:
      return 0;
    case 1: {
      int a = AsBool() ? 1 : 0;
      int b = other.AsBool() ? 1 : 0;
      return a - b;
    }
    case 2: {
      if (is_int() && other.is_int()) {
        int64_t a = AsInt();
        int64_t b = other.AsInt();
        return a < b ? -1 : (a > b ? 1 : 0);
      }
      double a = NumericValue();
      double b = other.NumericValue();
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    default:
      return AsString().compare(other.AsString());
  }
}

std::string PropertyValue::ToString() const {
  if (is_null()) return "null";
  if (is_bool()) return AsBool() ? "true" : "false";
  if (is_int()) return std::to_string(AsInt());
  if (is_double()) return StringFormat("%g", AsDouble());
  return "\"" + AsString() + "\"";
}

std::optional<PropertyValue> GetProperty(const PropertyMap& props,
                                         const std::string& key) {
  auto it = props.find(key);
  if (it == props.end()) return std::nullopt;
  return it->second;
}

}  // namespace graphdb
}  // namespace hypre
