// Embedded in-memory property-graph store.
//
// This is the repo's substitute for Neo4j (dissertation §4.3): labeled nodes
// and typed edges with property bags, adjacency lists for traversal, and
// label+property hash indexes (the dissertation's `uidIndex(uid)` scheme).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "graphdb/property.h"

namespace hypre {
namespace graphdb {

using NodeId = uint64_t;
using EdgeId = uint64_t;

inline constexpr NodeId kInvalidNode = ~0ULL;
inline constexpr EdgeId kInvalidEdge = ~0ULL;

/// \brief A node record: labels, properties, adjacency.
struct Node {
  NodeId id = kInvalidNode;
  std::vector<std::string> labels;
  PropertyMap props;
  std::vector<EdgeId> out_edges;
  std::vector<EdgeId> in_edges;
  bool deleted = false;
};

/// \brief A directed, typed edge with properties.
struct Edge {
  EdgeId id = kInvalidEdge;
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  std::string type;
  PropertyMap props;
  bool deleted = false;
};

/// \brief The graph store. Nodes and edges live in append-only arenas; ids
/// are stable; deletion tombstones. Not thread safe (single-writer use as in
/// the dissertation's prototype).
class GraphStore {
 public:
  // --- nodes ---------------------------------------------------------------

  NodeId AddNode(std::vector<std::string> labels, PropertyMap props);

  /// \brief Deletes a node and every incident edge.
  Status RemoveNode(NodeId id);

  bool NodeExists(NodeId id) const {
    return id < nodes_.size() && !nodes_[id].deleted;
  }

  Result<const Node*> GetNode(NodeId id) const;

  Status AddLabel(NodeId id, const std::string& label);

  Status SetNodeProperty(NodeId id, const std::string& key,
                         PropertyValue value);

  /// \brief Returns the property or nullopt (also nullopt for missing node).
  std::optional<PropertyValue> GetNodeProperty(NodeId id,
                                               const std::string& key) const;

  // --- edges ---------------------------------------------------------------

  Result<EdgeId> AddEdge(NodeId src, NodeId dst, std::string type,
                         PropertyMap props = {});

  Status RemoveEdge(EdgeId id);

  bool EdgeExists(EdgeId id) const {
    return id < edges_.size() && !edges_[id].deleted;
  }

  Result<const Edge*> GetEdge(EdgeId id) const;

  /// \brief Changes an edge's type label (used to relabel DISCARD edges to
  /// PREFERS when a conflict is later resolved).
  Status SetEdgeType(EdgeId id, std::string type);

  Status SetEdgeProperty(EdgeId id, const std::string& key,
                         PropertyValue value);

  // --- adjacency -----------------------------------------------------------

  /// \brief Ids of live out-edges of `id` with type `type` ("" = any).
  std::vector<EdgeId> OutEdges(NodeId id, const std::string& type = "") const;

  /// \brief Ids of live in-edges of `id` with type `type` ("" = any).
  std::vector<EdgeId> InEdges(NodeId id, const std::string& type = "") const;

  size_t OutDegree(NodeId id, const std::string& type = "") const;
  size_t InDegree(NodeId id, const std::string& type = "") const;

  /// \brief OutDegree + InDegree.
  size_t Degree(NodeId id, const std::string& type = "") const;

  // --- indexes -------------------------------------------------------------

  /// \brief Registers (and back-fills) a hash index over nodes carrying
  /// `label`, keyed by property `property`. Kept up to date by AddNode /
  /// AddLabel / SetNodeProperty / RemoveNode.
  Status CreateIndex(const std::string& label, const std::string& property);

  /// \brief Index lookup; Status error if no such index is registered.
  Result<std::vector<NodeId>> FindNodes(const std::string& label,
                                        const std::string& property,
                                        const PropertyValue& value) const;

  bool HasIndex(const std::string& label, const std::string& property) const;

  // --- scans & stats ---------------------------------------------------------

  /// \brief Invokes `fn` for every live node.
  void ForEachNode(const std::function<void(const Node&)>& fn) const;

  /// \brief Invokes `fn` for every live edge.
  void ForEachEdge(const std::function<void(const Edge&)>& fn) const;

  size_t num_nodes() const { return live_nodes_; }
  size_t num_edges() const { return live_edges_; }

  /// \brief Pre-allocates arena capacity for bulk loads.
  void Reserve(size_t nodes, size_t edges);

 private:
  struct IndexKey {
    std::string label;
    std::string property;
    bool operator<(const IndexKey& other) const {
      if (label != other.label) return label < other.label;
      return property < other.property;
    }
  };
  struct PropertyValueHash {
    size_t operator()(const std::string& s) const {
      return std::hash<std::string>()(s);
    }
  };
  // Index maps a rendered property value to node ids. Rendering via
  // PropertyValue::ToString keeps keys hashable without exposing the variant.
  using IndexMap = std::unordered_map<std::string, std::vector<NodeId>>;

  void IndexInsert(NodeId id, const Node& node);
  void IndexEraseValue(NodeId id, const std::string& label,
                       const std::string& property,
                       const PropertyValue& value);

  std::vector<Node> nodes_;
  std::vector<Edge> edges_;
  size_t live_nodes_ = 0;
  size_t live_edges_ = 0;
  std::map<IndexKey, IndexMap> indexes_;
};

}  // namespace graphdb
}  // namespace hypre
