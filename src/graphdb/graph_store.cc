#include "graphdb/graph_store.h"

#include <algorithm>

#include "common/string_util.h"

namespace hypre {
namespace graphdb {

NodeId GraphStore::AddNode(std::vector<std::string> labels,
                           PropertyMap props) {
  NodeId id = nodes_.size();
  Node node;
  node.id = id;
  node.labels = std::move(labels);
  node.props = std::move(props);
  nodes_.push_back(std::move(node));
  ++live_nodes_;
  IndexInsert(id, nodes_[id]);
  return id;
}

Status GraphStore::RemoveNode(NodeId id) {
  if (!NodeExists(id)) {
    return Status::NotFound(StringFormat("no node %llu",
                                         (unsigned long long)id));
  }
  Node& node = nodes_[id];
  // Cascade: remove incident edges first (copy ids; RemoveEdge mutates).
  std::vector<EdgeId> incident = node.out_edges;
  incident.insert(incident.end(), node.in_edges.begin(), node.in_edges.end());
  for (EdgeId eid : incident) {
    if (EdgeExists(eid)) HYPRE_RETURN_NOT_OK(RemoveEdge(eid));
  }
  // Drop from indexes.
  for (const auto& label : node.labels) {
    for (const auto& [key, map] : indexes_) {
      (void)map;
      if (key.label != label) continue;
      auto prop = GetProperty(node.props, key.property);
      if (prop) IndexEraseValue(id, key.label, key.property, *prop);
    }
  }
  node.deleted = true;
  --live_nodes_;
  return Status::OK();
}

Result<const Node*> GraphStore::GetNode(NodeId id) const {
  if (!NodeExists(id)) {
    return Status::NotFound(StringFormat("no node %llu",
                                         (unsigned long long)id));
  }
  return &nodes_[id];
}

Status GraphStore::AddLabel(NodeId id, const std::string& label) {
  if (!NodeExists(id)) {
    return Status::NotFound(StringFormat("no node %llu",
                                         (unsigned long long)id));
  }
  Node& node = nodes_[id];
  if (std::find(node.labels.begin(), node.labels.end(), label) !=
      node.labels.end()) {
    return Status::OK();
  }
  node.labels.push_back(label);
  // Back-fill any index on (label, *).
  for (auto& [key, map] : indexes_) {
    if (key.label != label) continue;
    auto prop = GetProperty(node.props, key.property);
    if (prop) map[prop->ToString()].push_back(id);
  }
  return Status::OK();
}

Status GraphStore::SetNodeProperty(NodeId id, const std::string& key,
                                   PropertyValue value) {
  if (!NodeExists(id)) {
    return Status::NotFound(StringFormat("no node %llu",
                                         (unsigned long long)id));
  }
  Node& node = nodes_[id];
  auto old = GetProperty(node.props, key);
  for (const auto& label : node.labels) {
    IndexKey ikey{label, key};
    auto it = indexes_.find(ikey);
    if (it == indexes_.end()) continue;
    if (old) IndexEraseValue(id, label, key, *old);
    it->second[value.ToString()].push_back(id);
  }
  node.props[key] = std::move(value);
  return Status::OK();
}

std::optional<PropertyValue> GraphStore::GetNodeProperty(
    NodeId id, const std::string& key) const {
  if (!NodeExists(id)) return std::nullopt;
  return GetProperty(nodes_[id].props, key);
}

Result<EdgeId> GraphStore::AddEdge(NodeId src, NodeId dst, std::string type,
                                   PropertyMap props) {
  if (!NodeExists(src)) {
    return Status::NotFound(StringFormat("no source node %llu",
                                         (unsigned long long)src));
  }
  if (!NodeExists(dst)) {
    return Status::NotFound(StringFormat("no destination node %llu",
                                         (unsigned long long)dst));
  }
  EdgeId id = edges_.size();
  Edge edge;
  edge.id = id;
  edge.src = src;
  edge.dst = dst;
  edge.type = std::move(type);
  edge.props = std::move(props);
  edges_.push_back(std::move(edge));
  nodes_[src].out_edges.push_back(id);
  nodes_[dst].in_edges.push_back(id);
  ++live_edges_;
  return id;
}

Status GraphStore::RemoveEdge(EdgeId id) {
  if (!EdgeExists(id)) {
    return Status::NotFound(StringFormat("no edge %llu",
                                         (unsigned long long)id));
  }
  Edge& edge = edges_[id];
  auto erase_from = [id](std::vector<EdgeId>* v) {
    v->erase(std::remove(v->begin(), v->end(), id), v->end());
  };
  erase_from(&nodes_[edge.src].out_edges);
  erase_from(&nodes_[edge.dst].in_edges);
  edge.deleted = true;
  --live_edges_;
  return Status::OK();
}

Result<const Edge*> GraphStore::GetEdge(EdgeId id) const {
  if (!EdgeExists(id)) {
    return Status::NotFound(StringFormat("no edge %llu",
                                         (unsigned long long)id));
  }
  return &edges_[id];
}

Status GraphStore::SetEdgeType(EdgeId id, std::string type) {
  if (!EdgeExists(id)) {
    return Status::NotFound(StringFormat("no edge %llu",
                                         (unsigned long long)id));
  }
  edges_[id].type = std::move(type);
  return Status::OK();
}

Status GraphStore::SetEdgeProperty(EdgeId id, const std::string& key,
                                   PropertyValue value) {
  if (!EdgeExists(id)) {
    return Status::NotFound(StringFormat("no edge %llu",
                                         (unsigned long long)id));
  }
  edges_[id].props[key] = std::move(value);
  return Status::OK();
}

std::vector<EdgeId> GraphStore::OutEdges(NodeId id,
                                         const std::string& type) const {
  std::vector<EdgeId> out;
  if (!NodeExists(id)) return out;
  for (EdgeId eid : nodes_[id].out_edges) {
    if (!EdgeExists(eid)) continue;
    if (!type.empty() && edges_[eid].type != type) continue;
    out.push_back(eid);
  }
  return out;
}

std::vector<EdgeId> GraphStore::InEdges(NodeId id,
                                        const std::string& type) const {
  std::vector<EdgeId> out;
  if (!NodeExists(id)) return out;
  for (EdgeId eid : nodes_[id].in_edges) {
    if (!EdgeExists(eid)) continue;
    if (!type.empty() && edges_[eid].type != type) continue;
    out.push_back(eid);
  }
  return out;
}

size_t GraphStore::OutDegree(NodeId id, const std::string& type) const {
  return OutEdges(id, type).size();
}

size_t GraphStore::InDegree(NodeId id, const std::string& type) const {
  return InEdges(id, type).size();
}

size_t GraphStore::Degree(NodeId id, const std::string& type) const {
  return OutDegree(id, type) + InDegree(id, type);
}

Status GraphStore::CreateIndex(const std::string& label,
                               const std::string& property) {
  IndexKey key{label, property};
  IndexMap& map = indexes_[key];  // creates (or resets below)
  map.clear();
  for (const Node& node : nodes_) {
    if (node.deleted) continue;
    if (std::find(node.labels.begin(), node.labels.end(), label) ==
        node.labels.end()) {
      continue;
    }
    auto prop = GetProperty(node.props, property);
    if (prop) map[prop->ToString()].push_back(node.id);
  }
  return Status::OK();
}

Result<std::vector<NodeId>> GraphStore::FindNodes(
    const std::string& label, const std::string& property,
    const PropertyValue& value) const {
  auto it = indexes_.find(IndexKey{label, property});
  if (it == indexes_.end()) {
    return Status::NotFound("no index on (" + label + ", " + property + ")");
  }
  auto vit = it->second.find(value.ToString());
  if (vit == it->second.end()) return std::vector<NodeId>{};
  return vit->second;
}

bool GraphStore::HasIndex(const std::string& label,
                          const std::string& property) const {
  return indexes_.count(IndexKey{label, property}) > 0;
}

void GraphStore::ForEachNode(
    const std::function<void(const Node&)>& fn) const {
  for (const Node& node : nodes_) {
    if (!node.deleted) fn(node);
  }
}

void GraphStore::ForEachEdge(
    const std::function<void(const Edge&)>& fn) const {
  for (const Edge& edge : edges_) {
    if (!edge.deleted) fn(edge);
  }
}

void GraphStore::Reserve(size_t nodes, size_t edges) {
  nodes_.reserve(nodes);
  edges_.reserve(edges);
}

void GraphStore::IndexInsert(NodeId id, const Node& node) {
  for (auto& [key, map] : indexes_) {
    if (std::find(node.labels.begin(), node.labels.end(), key.label) ==
        node.labels.end()) {
      continue;
    }
    auto prop = GetProperty(node.props, key.property);
    if (prop) map[prop->ToString()].push_back(id);
  }
}

void GraphStore::IndexEraseValue(NodeId id, const std::string& label,
                                 const std::string& property,
                                 const PropertyValue& value) {
  auto it = indexes_.find(IndexKey{label, property});
  if (it == indexes_.end()) return;
  auto vit = it->second.find(value.ToString());
  if (vit == it->second.end()) return;
  auto& vec = vit->second;
  vec.erase(std::remove(vec.begin(), vec.end(), id), vec.end());
  if (vec.empty()) it->second.erase(vit);
}

}  // namespace graphdb
}  // namespace hypre
