// Synthetic DBLP citation network (substitute for DBLP-Citation-network V4).
//
// The real dataset (dissertation §6.1, Table 10: 1.6M papers, 1.0M authors,
// 2.3M citations, 4.3M author links) is not redistributable or available
// offline, so this generator produces a structurally equivalent network:
//
//  * venue popularity, author productivity and citation fan-in are
//    Zipf-distributed (the long tail that makes per-user preference counts
//    follow Figure 17's shape);
//  * authors live in research communities: papers draw their author set and
//    venue from one community, so a given author's papers concentrate on a
//    few venues (meaningful top-5 venue shares, §6.2.1) and author pairs
//    co-publish repeatedly (AND-compatible author preferences, §7.3);
//  * citations prefer the same community and earlier, popular papers.
//
// Schema matches §6.1:
//   dblp(pid, title, year, venue)      author(aid, name)
//   dblp_author(pid, aid)              citation(pid, cid)
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "reldb/database.h"

namespace hypre {
namespace workload {

struct DblpConfig {
  size_t num_papers = 20000;
  size_t num_authors = 8000;
  size_t num_venues = 30;
  size_t num_communities = 40;
  size_t max_authors_per_paper = 4;
  double avg_citations_per_paper = 3.0;
  int64_t min_year = 1990;
  int64_t max_year = 2011;
  double venue_zipf = 1.1;
  double author_zipf = 1.3;
  uint64_t seed = 42;

  /// \brief Multiplies paper/author/citation counts (HYPRE_SCALE in the
  /// benches).
  void Scale(size_t factor) {
    num_papers *= factor;
    num_authors *= factor;
  }
};

/// \brief Row counts of the generated network (Table 10 shape).
struct DblpStats {
  size_t num_papers = 0;
  size_t num_authors = 0;
  size_t num_author_links = 0;
  size_t num_citations = 0;
  size_t num_cited_papers = 0;  // distinct papers that are cited
  size_t num_venues = 0;
};

/// \brief Generates the network into `db` (tables dblp, author, dblp_author,
/// citation) with hash indexes on dblp.venue, dblp.pid, dblp_author.aid,
/// dblp_author.pid, citation.pid and an ordered index on dblp.year.
Result<DblpStats> GenerateDblp(const DblpConfig& config,
                               reldb::Database* db);

/// \brief The venue name for a venue rank (rank 0 = most popular). The first
/// ranks use familiar names (SIGMOD, VLDB, ...) so example output reads like
/// the dissertation's.
std::string VenueName(size_t rank);

}  // namespace workload
}  // namespace hypre
