#include "workload/dblp_generator.h"

#include <algorithm>
#include <unordered_set>

#include "common/random.h"
#include "common/string_util.h"

using hypre::reldb::Column;
using hypre::reldb::Database;
using hypre::reldb::Row;
using hypre::reldb::Schema;
using hypre::reldb::Table;
using hypre::reldb::Value;
using hypre::reldb::ValueType;

namespace hypre {
namespace workload {

std::string VenueName(size_t rank) {
  static const char* kKnown[] = {"SIGMOD",  "VLDB", "PVLDB", "PODS",
                                 "ICDE",    "CIKM", "KDD",   "INFOCOM",
                                 "SIGCOMM", "EDBT", "WWW",   "ICDM"};
  constexpr size_t kNumKnown = sizeof(kKnown) / sizeof(kKnown[0]);
  if (rank < kNumKnown) return kKnown[rank];
  return StringFormat("CONF-%zu", rank);
}

Result<DblpStats> GenerateDblp(const DblpConfig& config, Database* db) {
  if (config.num_papers == 0 || config.num_authors == 0 ||
      config.num_venues == 0 || config.num_communities == 0) {
    return Status::InvalidArgument("all DblpConfig sizes must be positive");
  }
  Rng rng(config.seed);

  // --- tables ----------------------------------------------------------------
  HYPRE_ASSIGN_OR_RETURN(
      Table * dblp,
      db->CreateTable("dblp", Schema({{"pid", ValueType::kInt64},
                                      {"title", ValueType::kString},
                                      {"year", ValueType::kInt64},
                                      {"venue", ValueType::kString}})));
  HYPRE_ASSIGN_OR_RETURN(
      Table * author,
      db->CreateTable("author", Schema({{"aid", ValueType::kInt64},
                                        {"name", ValueType::kString}})));
  HYPRE_ASSIGN_OR_RETURN(
      Table * dblp_author,
      db->CreateTable("dblp_author", Schema({{"pid", ValueType::kInt64},
                                             {"aid", ValueType::kInt64}})));
  HYPRE_ASSIGN_OR_RETURN(
      Table * citation,
      db->CreateTable("citation", Schema({{"pid", ValueType::kInt64},
                                          {"cid", ValueType::kInt64}})));

  // --- authors & communities ---------------------------------------------------
  for (size_t a = 0; a < config.num_authors; ++a) {
    author->AppendUnchecked(Row{Value::Int(static_cast<int64_t>(a)),
                                Value::Str(StringFormat("Author %zu", a))});
  }
  // Authors are striped across communities; within a community, membership
  // rank drives a Zipf so a few members write most papers.
  size_t community_size =
      (config.num_authors + config.num_communities - 1) /
      config.num_communities;
  auto community_member = [&](size_t community, size_t rank) -> int64_t {
    size_t aid = community + rank * config.num_communities;
    return static_cast<int64_t>(aid % config.num_authors);
  };
  ZipfSampler member_sampler(community_size, config.author_zipf);
  ZipfSampler venue_sampler(config.num_venues, config.venue_zipf);

  // --- papers --------------------------------------------------------------
  DblpStats stats;
  std::vector<size_t> paper_community(config.num_papers);
  for (size_t p = 0; p < config.num_papers; ++p) {
    size_t community = rng.NextBounded(config.num_communities);
    paper_community[p] = community;

    // Venue: a Zipf draw over the global ranking rotated by the community,
    // so each community concentrates on its own few venues.
    size_t venue_rank =
        (venue_sampler.Sample(&rng) + community) % config.num_venues;
    int64_t year = rng.NextInt(config.min_year, config.max_year);
    dblp->AppendUnchecked(Row{Value::Int(static_cast<int64_t>(p)),
                              Value::Str(StringFormat("Paper %zu", p)),
                              Value::Int(year),
                              Value::Str(VenueName(venue_rank))});

    // Authors: 1..max from the paper's community (Zipf over member rank).
    size_t num_authors =
        1 + rng.NextBounded(config.max_authors_per_paper);
    std::unordered_set<int64_t> chosen;
    for (size_t k = 0; k < num_authors; ++k) {
      int64_t aid = community_member(community, member_sampler.Sample(&rng));
      if (!chosen.insert(aid).second) continue;
      dblp_author->AppendUnchecked(
          Row{Value::Int(static_cast<int64_t>(p)), Value::Int(aid)});
      ++stats.num_author_links;
    }
  }

  // --- citations --------------------------------------------------------------
  // A paper cites earlier papers, mostly within its community, with a hard
  // bias toward the community's "canon" (its oldest/most-cited papers):
  // the cubed uniform draw sends ~50% of same-community citations to the
  // community's first ~12% of papers. That concentration is what gives a
  // prolific author a steep cited-author share distribution — a handful of
  // canon authors above the 0.1 extraction cutoff plus a long tail below
  // it, the shape behind the paper's Figure 26 intensity spread. Early
  // papers have nothing in-corpus to cite, matching real citation data.
  std::vector<std::vector<size_t>> community_papers(config.num_communities);
  for (size_t p = 0; p < config.num_papers; ++p) {
    community_papers[paper_community[p]].push_back(p);
  }
  std::unordered_set<int64_t> cited;
  std::vector<size_t> community_cursor(config.num_communities, 0);
  for (size_t p = 1; p < config.num_papers; ++p) {
    // Advance each community's cursor past papers older than p.
    size_t pc = paper_community[p];
    while (community_cursor[pc] < community_papers[pc].size() &&
           community_papers[pc][community_cursor[pc]] < p) {
      ++community_cursor[pc];
    }
    double expected = config.avg_citations_per_paper;
    size_t refs = 0;
    // Geometric-ish count with mean `expected`.
    while (rng.NextDouble() < expected / (expected + 1.0) && refs < 40) {
      ++refs;
    }
    std::unordered_set<int64_t> targets;
    for (size_t r = 0; r < refs; ++r) {
      double u = rng.NextDouble();
      double cube = u * u * u;
      size_t candidate;
      if (rng.NextBernoulli(0.8) && community_cursor[pc] > 0) {
        // Same community, canon-biased: cubed draw over the community's
        // papers older than p.
        size_t idx = static_cast<size_t>(
            static_cast<double>(community_cursor[pc]) * cube);
        candidate = community_papers[pc][idx];
      } else {
        // Cross-community, popularity-biased over the global prefix.
        candidate = static_cast<size_t>(static_cast<double>(p) * cube);
      }
      int64_t cid = static_cast<int64_t>(candidate);
      if (cid == static_cast<int64_t>(p)) continue;
      if (!targets.insert(cid).second) continue;
      citation->AppendUnchecked(
          Row{Value::Int(static_cast<int64_t>(p)), Value::Int(cid)});
      cited.insert(cid);
      ++stats.num_citations;
    }
  }

  // --- indexes -------------------------------------------------------------
  HYPRE_RETURN_NOT_OK(dblp->CreateHashIndex("pid"));
  HYPRE_RETURN_NOT_OK(dblp->CreateHashIndex("venue"));
  HYPRE_RETURN_NOT_OK(dblp->CreateOrderedIndex("year"));
  HYPRE_RETURN_NOT_OK(dblp_author->CreateHashIndex("pid"));
  HYPRE_RETURN_NOT_OK(dblp_author->CreateHashIndex("aid"));
  HYPRE_RETURN_NOT_OK(citation->CreateHashIndex("pid"));
  HYPRE_RETURN_NOT_OK(author->CreateHashIndex("aid"));

  stats.num_papers = config.num_papers;
  stats.num_authors = config.num_authors;
  stats.num_cited_papers = cited.size();
  stats.num_venues = config.num_venues;
  return stats;
}

}  // namespace workload
}  // namespace hypre
