#include "workload/canonical.h"

using hypre::reldb::Column;
using hypre::reldb::Database;
using hypre::reldb::Row;
using hypre::reldb::Schema;
using hypre::reldb::Table;
using hypre::reldb::Value;
using hypre::reldb::ValueType;

namespace hypre {
namespace workload {

Status BuildMovieDatabase(Database* db) {
  Schema schema({{"movie_id", ValueType::kString},
                 {"title", ValueType::kString},
                 {"year", ValueType::kInt64},
                 {"director", ValueType::kString},
                 {"genre", ValueType::kString}});
  HYPRE_ASSIGN_OR_RETURN(Table * movies,
                         db->CreateTable("movie", std::move(schema)));
  struct MovieRow {
    const char* id;
    const char* title;
    int64_t year;
    const char* director;
    const char* genre;
  };
  const MovieRow kRows[] = {
      {"m1", "Casablanca", 1942, "M. Curtiz", "drama"},
      {"m2", "Psycho", 1960, "A. Hitchock", "horror"},
      {"m3", "Schindler's List", 1993, "S. Spielberg", "drama"},
      {"m4", "White Christmas", 1954, "M. Curtiz", "comedy"},
      {"m5", "The Adventures of Tintin", 2011, "S. Spielberg", "comedy"},
      {"m6", "The Girl on the Train", 2013, "L. Brand", "thriller"},
  };
  for (const auto& r : kRows) {
    HYPRE_RETURN_NOT_OK(movies->Append(Row{
        Value::Str(r.id), Value::Str(r.title), Value::Int(r.year),
        Value::Str(r.director), Value::Str(r.genre)}));
  }
  HYPRE_RETURN_NOT_OK(movies->CreateHashIndex("genre"));
  HYPRE_RETURN_NOT_OK(movies->CreateHashIndex("director"));
  HYPRE_RETURN_NOT_OK(movies->CreateOrderedIndex("year"));
  return Status::OK();
}

std::vector<std::pair<std::string, double>> MovieIntensities() {
  return {{"m1", 0.3}, {"m2", 0.9}, {"m3", 0.0}, {"m4", 0.3}, {"m5", 0.6}};
}

Status BuildDealershipDatabase(Database* db) {
  Schema schema({{"id", ValueType::kString},
                 {"price", ValueType::kInt64},
                 {"mileage", ValueType::kInt64},
                 {"make", ValueType::kString}});
  HYPRE_ASSIGN_OR_RETURN(Table * cars,
                         db->CreateTable("car", std::move(schema)));
  struct CarRow {
    const char* id;
    int64_t price;
    int64_t mileage;
    const char* make;
  };
  const CarRow kRows[] = {
      {"t1", 7000, 43489, "Honda"},
      {"t2", 16000, 35334, "VW"},
      {"t3", 20000, 49119, "Honda"},
  };
  for (const auto& r : kRows) {
    HYPRE_RETURN_NOT_OK(cars->Append(Row{Value::Str(r.id), Value::Int(r.price),
                                         Value::Int(r.mileage),
                                         Value::Str(r.make)}));
  }
  HYPRE_RETURN_NOT_OK(cars->CreateHashIndex("make"));
  HYPRE_RETURN_NOT_OK(cars->CreateOrderedIndex("price"));
  HYPRE_RETURN_NOT_OK(cars->CreateOrderedIndex("mileage"));
  return Status::OK();
}

Status BuildDblpSampleDatabase(Database* db) {
  Schema schema({{"pid", ValueType::kString},
                 {"title", ValueType::kString},
                 {"year", ValueType::kInt64},
                 {"venue", ValueType::kString}});
  HYPRE_ASSIGN_OR_RETURN(Table * dblp,
                         db->CreateTable("dblp", std::move(schema)));
  struct PaperRow {
    const char* pid;
    const char* title;
    int64_t year;
    const char* venue;
  };
  const PaperRow kRows[] = {
      {"t1", "Automated Selection of Materialized Views and Indexes in SQL "
             "Databases",
       2000, "VLDB"},
      {"t2", "Composite Subset Measures", 2006, "VLDB"},
      {"t3", "Keymantic: Semantic Keyword-based Searching in Data Integration "
             "Systems",
       2010, "PVLDB"},
      {"t4", "Proximity Rank Join", 2010, "PVLDB"},
      {"t5", "iNextCube: Information Network-Enhanced Text Cube", 2009,
       "PVLDB"},
      {"t6", "Processing Proximity Relations in Road Networks", 2010,
       "SIGMOD"},
      {"t7", "Relational Joins on Graphics Processors", 2008, "SIGMOD"},
      {"t8", "Refresh: Weak Privacy Model for RFID Systems", 2010, "INFOCOM"},
      {"t9", "Congestion Control in Distributed Media Streaming", 2007,
       "INFOCOM"},
  };
  for (const auto& r : kRows) {
    HYPRE_RETURN_NOT_OK(dblp->Append(Row{Value::Str(r.pid),
                                         Value::Str(r.title),
                                         Value::Int(r.year),
                                         Value::Str(r.venue)}));
  }
  HYPRE_RETURN_NOT_OK(dblp->CreateHashIndex("venue"));
  HYPRE_RETURN_NOT_OK(dblp->CreateOrderedIndex("year"));
  return Status::OK();
}

}  // namespace workload
}  // namespace hypre
