// Canonical small relations from the dissertation's running examples.
//
//  * Movie relation     — Table 3, with the Table 4 intensities
//  * Dealership relation — Tables 5/8 (Example 5/6; expected combined
//    intensities 0.92 / 0.9 / 0.6, Table 9)
//  * DBLP sample        — Table 6 (nine papers t1..t9)
// Used by examples, unit tests, and the documentation.
#pragma once

#include <vector>

#include "common/status.h"
#include "reldb/database.h"

namespace hypre {
namespace workload {

/// \brief Creates `movie(movie_id, title, year, director, genre)` with the
/// six tuples of Table 3, indexed on genre and director.
Status BuildMovieDatabase(reldb::Database* db);

/// \brief The Table 4 intensities for m1..m5 (m6 has none) as
/// (movie_id, score) pairs.
std::vector<std::pair<std::string, double>> MovieIntensities();

/// \brief Creates `car(id, price, mileage, make)` with the three tuples of
/// Tables 5/8, indexed on make, with ordered indexes on price and mileage.
Status BuildDealershipDatabase(reldb::Database* db);

/// \brief Creates `dblp(pid, title, year, venue)` with the nine tuples of
/// Table 6, indexed on venue with an ordered index on year.
Status BuildDblpSampleDatabase(reldb::Database* db);

}  // namespace workload
}  // namespace hypre
