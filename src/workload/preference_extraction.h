// Preference extraction from the DBLP citation network (dissertation §6.2).
//
// A user is an author. Five preference families are extracted:
//  1. Venue preference (quantitative): share of the user's papers in each of
//     their top-5 venues (§6.2.1) — predicate `dblp.venue='X'`.
//  2. Author preference (quantitative): share of the user's citations going
//     to each cited author, filtered below 0.1 — predicate
//     `dblp_author.aid=N`.
//  3. Negative venue preference (quantitative): for venues the user never
//     published in but their cited authors did,
//     intensity = -intensity_user(cited_author) * intensity_cited(venue).
//  4. Author-over-author (qualitative): consecutive entries of the UNFILTERED
//     author list sorted descending, with intensity = difference of the two
//     quantitative intensities (§6.2.2).
//  5. Venue-over-venue (qualitative): same over the top-5 venue list.
// Zero-difference pairs are kept (equally preferred); negative differences
// never occur because the source list is sorted, but the graph layer would
// reverse them anyway (Proposition 7).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/status.h"
#include "hypre/preference.h"
#include "reldb/database.h"

namespace hypre {
namespace workload {

struct ExtractionConfig {
  size_t top_venues = 5;
  double min_author_intensity = 0.1;
  /// Keep only the strongest (most negative) venue dislikes per user; the
  /// cross product of cited authors and their venues otherwise swamps the
  /// profile with weak negatives (0 = unlimited).
  size_t max_negative_per_user = 5;
  /// Extract only users with at least this many papers (0 = all). Users
  /// without papers have no preferences by construction.
  size_t min_papers = 1;
};

struct ExtractedPreferences {
  std::vector<core::QuantitativePreference> quantitative;
  std::vector<core::QualitativePreference> qualitative;

  // Family counters (venue/author/negative are quantitative sub-counts).
  size_t num_venue_prefs = 0;
  size_t num_author_prefs = 0;
  size_t num_negative_prefs = 0;

  /// \brief Total preferences per user (Figure 17's distribution).
  std::map<core::UserId, size_t> per_user_counts;

  /// \brief Users sorted descending by preference count (the benches pick
  /// their two focal users — a prolific one and a median one — from here).
  std::vector<core::UserId> UsersByPreferenceCount() const;
};

/// \brief Runs the extraction pipeline over a database produced by
/// GenerateDblp (or any database with the same four tables).
Result<ExtractedPreferences> ExtractPreferences(const reldb::Database& db,
                                                const ExtractionConfig& config);

}  // namespace workload
}  // namespace hypre
