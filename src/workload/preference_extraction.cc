#include "workload/preference_extraction.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "common/string_util.h"

using hypre::core::QualitativePreference;
using hypre::core::QuantitativePreference;
using hypre::core::UserId;
using hypre::reldb::Database;
using hypre::reldb::Table;

namespace hypre {
namespace workload {

namespace {

std::string VenuePredicate(const std::string& venue) {
  return "dblp.venue='" + venue + "'";
}

std::string AuthorPredicate(int64_t aid) {
  return StringFormat("dblp_author.aid=%lld", (long long)aid);
}

/// (value, intensity) sorted descending by intensity.
template <typename K>
std::vector<std::pair<K, double>> SortedShares(
    const std::unordered_map<K, size_t>& counts, size_t keep_top) {
  std::vector<std::pair<K, size_t>> entries(counts.begin(), counts.end());
  std::sort(entries.begin(), entries.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  if (keep_top > 0 && entries.size() > keep_top) entries.resize(keep_top);
  size_t total = 0;
  for (const auto& [key, count] : entries) total += count;
  std::vector<std::pair<K, double>> shares;
  shares.reserve(entries.size());
  for (const auto& [key, count] : entries) {
    shares.emplace_back(key, static_cast<double>(count) /
                                 static_cast<double>(total));
  }
  return shares;
}

}  // namespace

std::vector<UserId> ExtractedPreferences::UsersByPreferenceCount() const {
  std::vector<UserId> users;
  users.reserve(per_user_counts.size());
  for (const auto& [uid, count] : per_user_counts) users.push_back(uid);
  std::sort(users.begin(), users.end(), [&](UserId a, UserId b) {
    size_t ca = per_user_counts.at(a);
    size_t cb = per_user_counts.at(b);
    if (ca != cb) return ca > cb;
    return a < b;
  });
  return users;
}

Result<ExtractedPreferences> ExtractPreferences(
    const Database& db, const ExtractionConfig& config) {
  HYPRE_ASSIGN_OR_RETURN(const Table* dblp, db.ResolveTable("dblp"));
  HYPRE_ASSIGN_OR_RETURN(const Table* dblp_author,
                         db.ResolveTable("dblp_author"));
  HYPRE_ASSIGN_OR_RETURN(const Table* citation, db.ResolveTable("citation"));

  HYPRE_ASSIGN_OR_RETURN(size_t col_pid,
                         dblp->schema().ResolveColumn("pid"));
  HYPRE_ASSIGN_OR_RETURN(size_t col_venue,
                         dblp->schema().ResolveColumn("venue"));
  HYPRE_ASSIGN_OR_RETURN(size_t col_da_pid,
                         dblp_author->schema().ResolveColumn("pid"));
  HYPRE_ASSIGN_OR_RETURN(size_t col_da_aid,
                         dblp_author->schema().ResolveColumn("aid"));
  HYPRE_ASSIGN_OR_RETURN(size_t col_c_pid,
                         citation->schema().ResolveColumn("pid"));
  HYPRE_ASSIGN_OR_RETURN(size_t col_c_cid,
                         citation->schema().ResolveColumn("cid"));

  // --- in-memory joins --------------------------------------------------------
  std::unordered_map<int64_t, std::string> paper_venue;
  paper_venue.reserve(dblp->num_rows());
  for (reldb::RowId id = 0; id < dblp->num_rows(); ++id) {
    if (dblp->is_deleted(id)) continue;
    const auto& row = dblp->row(id);
    paper_venue.emplace(row[col_pid].AsInt(), row[col_venue].AsString());
  }
  std::unordered_map<int64_t, std::vector<int64_t>> papers_of_author;
  std::unordered_map<int64_t, std::vector<int64_t>> authors_of_paper;
  for (reldb::RowId id = 0; id < dblp_author->num_rows(); ++id) {
    if (dblp_author->is_deleted(id)) continue;
    const auto& row = dblp_author->row(id);
    int64_t pid = row[col_da_pid].AsInt();
    int64_t aid = row[col_da_aid].AsInt();
    papers_of_author[aid].push_back(pid);
    authors_of_paper[pid].push_back(aid);
  }
  std::unordered_map<int64_t, std::vector<int64_t>> cites_of_paper;
  for (reldb::RowId id = 0; id < citation->num_rows(); ++id) {
    if (citation->is_deleted(id)) continue;
    const auto& row = citation->row(id);
    cites_of_paper[row[col_c_pid].AsInt()].push_back(row[col_c_cid].AsInt());
  }

  ExtractedPreferences out;

  for (const auto& [aid, papers] : papers_of_author) {
    if (papers.size() < config.min_papers) continue;
    UserId uid = aid;
    size_t user_count = 0;

    // --- venue preferences (§6.2.1) ---------------------------------------
    std::unordered_map<std::string, size_t> venue_counts;
    std::unordered_set<std::string> own_venues;
    for (int64_t pid : papers) {
      auto it = paper_venue.find(pid);
      if (it == paper_venue.end()) continue;
      ++venue_counts[it->second];
      own_venues.insert(it->second);
    }
    auto venue_shares = SortedShares(venue_counts, config.top_venues);
    for (const auto& [venue, share] : venue_shares) {
      out.quantitative.push_back(
          QuantitativePreference{uid, VenuePredicate(venue), share});
      ++out.num_venue_prefs;
      ++user_count;
    }

    // --- author preferences from citations (§6.2.1) ------------------------
    std::unordered_map<int64_t, size_t> cited_author_counts;
    for (int64_t pid : papers) {
      auto cit = cites_of_paper.find(pid);
      if (cit == cites_of_paper.end()) continue;
      for (int64_t cid : cit->second) {
        auto ait = authors_of_paper.find(cid);
        if (ait == authors_of_paper.end()) continue;
        for (int64_t cited_author : ait->second) {
          if (cited_author == aid) continue;  // self-citations carry no signal
          ++cited_author_counts[cited_author];
        }
      }
    }
    // The unfiltered list feeds the qualitative extraction (§6.2.2 uses the
    // larger dataset on purpose: zero differences are valuable there).
    auto author_shares = SortedShares(cited_author_counts, 0);
    for (const auto& [cited_author, share] : author_shares) {
      if (share < config.min_author_intensity) continue;
      out.quantitative.push_back(
          QuantitativePreference{uid, AuthorPredicate(cited_author), share});
      ++out.num_author_prefs;
      ++user_count;
    }

    // --- negative venue preferences (§6.2.1) --------------------------------
    // Strongest signal wins if several cited authors point at one venue.
    std::unordered_map<std::string, double> negative_venues;
    for (const auto& [cited_author, share] : author_shares) {
      auto papers_it = papers_of_author.find(cited_author);
      if (papers_it == papers_of_author.end()) continue;
      std::unordered_map<std::string, size_t> their_venue_counts;
      for (int64_t pid : papers_it->second) {
        auto vit = paper_venue.find(pid);
        if (vit != paper_venue.end()) ++their_venue_counts[vit->second];
      }
      auto their_shares = SortedShares(their_venue_counts, config.top_venues);
      for (const auto& [venue, their_share] : their_shares) {
        if (own_venues.count(venue) > 0) continue;  // user publishes there
        double intensity = -(share * their_share);
        auto [it, inserted] = negative_venues.emplace(venue, intensity);
        if (!inserted) it->second = std::min(it->second, intensity);
      }
    }
    std::vector<std::pair<std::string, double>> negatives(
        negative_venues.begin(), negative_venues.end());
    std::sort(negatives.begin(), negatives.end(),
              [](const auto& a, const auto& b) {
                if (a.second != b.second) return a.second < b.second;
                return a.first < b.first;
              });
    if (config.max_negative_per_user > 0 &&
        negatives.size() > config.max_negative_per_user) {
      negatives.resize(config.max_negative_per_user);
    }
    for (const auto& [venue, intensity] : negatives) {
      out.quantitative.push_back(
          QuantitativePreference{uid, VenuePredicate(venue), intensity});
      ++out.num_negative_prefs;
      ++user_count;
    }

    // --- qualitative preferences (§6.2.2) ----------------------------------
    for (size_t i = 0; i + 1 < author_shares.size(); ++i) {
      out.qualitative.push_back(QualitativePreference{
          uid, AuthorPredicate(author_shares[i].first),
          AuthorPredicate(author_shares[i + 1].first),
          author_shares[i].second - author_shares[i + 1].second});
      ++user_count;
    }
    for (size_t i = 0; i + 1 < venue_shares.size(); ++i) {
      out.qualitative.push_back(QualitativePreference{
          uid, VenuePredicate(venue_shares[i].first),
          VenuePredicate(venue_shares[i + 1].first),
          venue_shares[i].second - venue_shares[i + 1].second});
      ++user_count;
    }

    if (user_count > 0) out.per_user_counts[uid] = user_count;
  }
  return out;
}

}  // namespace workload
}  // namespace hypre
