#include "sqlparse/parser.h"

#include "common/string_util.h"
#include "sqlparse/lexer.h"

namespace hypre {
namespace sqlparse {

using reldb::CompareOp;
using reldb::ExprPtr;
using reldb::Value;

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<ExprPtr> Parse() {
    HYPRE_ASSIGN_OR_RETURN(ExprPtr expr, ParseOr());
    if (Peek().type != TokenType::kEnd) {
      return UnexpectedToken("end of input");
    }
    return expr;
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Advance() { return tokens_[pos_++]; }
  bool Match(TokenType type) {
    if (Peek().type == type) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status UnexpectedToken(const std::string& expected) const {
    return Status::ParseError(StringFormat(
        "expected %s but found %s at offset %zu", expected.c_str(),
        TokenTypeToString(Peek().type), Peek().position));
  }

  Result<ExprPtr> ParseOr() {
    HYPRE_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAnd());
    std::vector<ExprPtr> children{lhs};
    while (Match(TokenType::kOr)) {
      HYPRE_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAnd());
      children.push_back(std::move(rhs));
    }
    if (children.size() == 1) return children[0];
    return reldb::MakeOr(std::move(children));
  }

  Result<ExprPtr> ParseAnd() {
    HYPRE_ASSIGN_OR_RETURN(ExprPtr lhs, ParseUnary());
    std::vector<ExprPtr> children{lhs};
    while (Match(TokenType::kAnd)) {
      HYPRE_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnary());
      children.push_back(std::move(rhs));
    }
    if (children.size() == 1) return children[0];
    return reldb::MakeAnd(std::move(children));
  }

  Result<ExprPtr> ParseUnary() {
    if (Match(TokenType::kNot)) {
      HYPRE_ASSIGN_OR_RETURN(ExprPtr child, ParseUnary());
      return reldb::MakeNot(std::move(child));
    }
    return ParsePrimary();
  }

  Result<ExprPtr> ParsePrimary() {
    if (Match(TokenType::kLParen)) {
      HYPRE_ASSIGN_OR_RETURN(ExprPtr inner, ParseOr());
      if (!Match(TokenType::kRParen)) return UnexpectedToken("')'");
      return inner;
    }
    return ParsePredicateAtom();
  }

  bool IsLiteral(TokenType t) const {
    return t == TokenType::kInt || t == TokenType::kReal ||
           t == TokenType::kString;
  }

  Result<Value> ParseLiteral() {
    const Token& tok = Peek();
    switch (tok.type) {
      case TokenType::kInt:
        Advance();
        return Value::Int(tok.int_value);
      case TokenType::kReal:
        Advance();
        return Value::Real(tok.real_value);
      case TokenType::kString:
        Advance();
        return Value::Str(tok.text);
      default:
        return UnexpectedToken("a literal");
    }
  }

  Result<ExprPtr> ParseColumnRef() {
    if (Peek().type != TokenType::kIdent) {
      return UnexpectedToken("a column name");
    }
    std::string first = Advance().text;
    if (Match(TokenType::kDot)) {
      if (Peek().type != TokenType::kIdent) {
        return UnexpectedToken("a column name after '.'");
      }
      std::string second = Advance().text;
      return reldb::Col(std::move(first), std::move(second));
    }
    return reldb::Col(std::move(first));
  }

  Result<ExprPtr> ParseOperand() {
    if (Peek().type == TokenType::kIdent) return ParseColumnRef();
    HYPRE_ASSIGN_OR_RETURN(Value v, ParseLiteral());
    return reldb::Lit(std::move(v));
  }

  Result<ExprPtr> ParsePredicateAtom() {
    HYPRE_ASSIGN_OR_RETURN(ExprPtr lhs, ParseOperand());

    const Token& tok = Peek();
    switch (tok.type) {
      case TokenType::kEq:
      case TokenType::kNe:
      case TokenType::kLt:
      case TokenType::kLe:
      case TokenType::kGt:
      case TokenType::kGe: {
        CompareOp op;
        switch (tok.type) {
          case TokenType::kEq:
            op = CompareOp::kEq;
            break;
          case TokenType::kNe:
            op = CompareOp::kNe;
            break;
          case TokenType::kLt:
            op = CompareOp::kLt;
            break;
          case TokenType::kLe:
            op = CompareOp::kLe;
            break;
          case TokenType::kGt:
            op = CompareOp::kGt;
            break;
          default:
            op = CompareOp::kGe;
            break;
        }
        Advance();
        HYPRE_ASSIGN_OR_RETURN(ExprPtr rhs, ParseOperand());
        return reldb::Cmp(op, std::move(lhs), std::move(rhs));
      }
      case TokenType::kBetween: {
        Advance();
        HYPRE_ASSIGN_OR_RETURN(Value lo, ParseLiteral());
        if (!Match(TokenType::kAnd)) return UnexpectedToken("AND");
        HYPRE_ASSIGN_OR_RETURN(Value hi, ParseLiteral());
        return reldb::Between(std::move(lhs), std::move(lo), std::move(hi));
      }
      case TokenType::kIn: {
        Advance();
        if (!Match(TokenType::kLParen)) return UnexpectedToken("'('");
        std::vector<Value> values;
        do {
          HYPRE_ASSIGN_OR_RETURN(Value v, ParseLiteral());
          values.push_back(std::move(v));
        } while (Match(TokenType::kComma));
        if (!Match(TokenType::kRParen)) return UnexpectedToken("')'");
        return reldb::In(std::move(lhs), std::move(values));
      }
      default:
        return UnexpectedToken("a comparison operator, BETWEEN, or IN");
    }
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<ExprPtr> ParsePredicate(const std::string& input) {
  HYPRE_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(input));
  Parser parser(std::move(tokens));
  return parser.Parse();
}

}  // namespace sqlparse
}  // namespace hypre
