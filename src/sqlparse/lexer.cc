#include "sqlparse/lexer.h"

#include <cctype>
#include <cstdlib>

#include "common/string_util.h"

namespace hypre {
namespace sqlparse {

const char* TokenTypeToString(TokenType type) {
  switch (type) {
    case TokenType::kIdent:
      return "identifier";
    case TokenType::kInt:
      return "integer";
    case TokenType::kReal:
      return "real";
    case TokenType::kString:
      return "string";
    case TokenType::kEq:
      return "'='";
    case TokenType::kNe:
      return "'!='";
    case TokenType::kLt:
      return "'<'";
    case TokenType::kLe:
      return "'<='";
    case TokenType::kGt:
      return "'>'";
    case TokenType::kGe:
      return "'>='";
    case TokenType::kLParen:
      return "'('";
    case TokenType::kRParen:
      return "')'";
    case TokenType::kComma:
      return "','";
    case TokenType::kDot:
      return "'.'";
    case TokenType::kStar:
      return "'*'";
    case TokenType::kAnd:
      return "AND";
    case TokenType::kOr:
      return "OR";
    case TokenType::kNot:
      return "NOT";
    case TokenType::kBetween:
      return "BETWEEN";
    case TokenType::kIn:
      return "IN";
    case TokenType::kEnd:
      return "end of input";
  }
  return "?";
}

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

Result<Token> LexNumber(const std::string& in, size_t* pos) {
  size_t start = *pos;
  size_t i = *pos;
  if (in[i] == '-') ++i;
  bool saw_digit = false;
  bool is_real = false;
  while (i < in.size() && std::isdigit(static_cast<unsigned char>(in[i]))) {
    ++i;
    saw_digit = true;
  }
  if (i < in.size() && in[i] == '.') {
    // Only a decimal point if followed by a digit (else it's a qualifier dot,
    // but a qualifier dot cannot follow digits in our grammar anyway).
    is_real = true;
    ++i;
    while (i < in.size() && std::isdigit(static_cast<unsigned char>(in[i]))) {
      ++i;
      saw_digit = true;
    }
  }
  if (i < in.size() && (in[i] == 'e' || in[i] == 'E')) {
    size_t j = i + 1;
    if (j < in.size() && (in[j] == '+' || in[j] == '-')) ++j;
    if (j < in.size() && std::isdigit(static_cast<unsigned char>(in[j]))) {
      is_real = true;
      i = j;
      while (i < in.size() &&
             std::isdigit(static_cast<unsigned char>(in[i]))) {
        ++i;
      }
    }
  }
  if (!saw_digit) {
    return Status::ParseError(
        StringFormat("malformed number at offset %zu", start));
  }
  Token tok;
  tok.position = start;
  tok.text = in.substr(start, i - start);
  if (is_real) {
    tok.type = TokenType::kReal;
    tok.real_value = std::strtod(tok.text.c_str(), nullptr);
  } else {
    tok.type = TokenType::kInt;
    tok.int_value = std::strtoll(tok.text.c_str(), nullptr, 10);
  }
  *pos = i;
  return tok;
}

Result<Token> LexString(const std::string& in, size_t* pos) {
  char quote = in[*pos];
  size_t start = *pos;
  size_t i = *pos + 1;
  std::string content;
  while (i < in.size()) {
    if (in[i] == quote) {
      if (i + 1 < in.size() && in[i + 1] == quote) {
        content.push_back(quote);  // doubled-quote escape
        i += 2;
        continue;
      }
      Token tok;
      tok.type = TokenType::kString;
      tok.text = std::move(content);
      tok.position = start;
      *pos = i + 1;
      return tok;
    }
    content.push_back(in[i]);
    ++i;
  }
  return Status::ParseError(
      StringFormat("unterminated string starting at offset %zu", start));
}

}  // namespace

Result<std::vector<Token>> Tokenize(const std::string& input) {
  std::vector<Token> out;
  size_t i = 0;
  while (i < input.size()) {
    char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '\'' || c == '"') {
      HYPRE_ASSIGN_OR_RETURN(Token tok, LexString(input, &i));
      out.push_back(std::move(tok));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && i + 1 < input.size() &&
         (std::isdigit(static_cast<unsigned char>(input[i + 1])) ||
          input[i + 1] == '.'))) {
      HYPRE_ASSIGN_OR_RETURN(Token tok, LexNumber(input, &i));
      out.push_back(std::move(tok));
      continue;
    }
    if (IsIdentStart(c)) {
      size_t start = i;
      while (i < input.size() && IsIdentChar(input[i])) ++i;
      Token tok;
      tok.position = start;
      tok.text = input.substr(start, i - start);
      if (EqualsIgnoreCase(tok.text, "AND")) {
        tok.type = TokenType::kAnd;
      } else if (EqualsIgnoreCase(tok.text, "OR")) {
        tok.type = TokenType::kOr;
      } else if (EqualsIgnoreCase(tok.text, "NOT")) {
        tok.type = TokenType::kNot;
      } else if (EqualsIgnoreCase(tok.text, "BETWEEN")) {
        tok.type = TokenType::kBetween;
      } else if (EqualsIgnoreCase(tok.text, "IN")) {
        tok.type = TokenType::kIn;
      } else {
        tok.type = TokenType::kIdent;
      }
      out.push_back(std::move(tok));
      continue;
    }
    Token tok;
    tok.position = i;
    switch (c) {
      case '=':
        tok.type = TokenType::kEq;
        ++i;
        break;
      case '!':
        if (i + 1 < input.size() && input[i + 1] == '=') {
          tok.type = TokenType::kNe;
          i += 2;
        } else {
          return Status::ParseError(
              StringFormat("unexpected '!' at offset %zu", i));
        }
        break;
      case '<':
        if (i + 1 < input.size() && input[i + 1] == '=') {
          tok.type = TokenType::kLe;
          i += 2;
        } else if (i + 1 < input.size() && input[i + 1] == '>') {
          tok.type = TokenType::kNe;
          i += 2;
        } else {
          tok.type = TokenType::kLt;
          ++i;
        }
        break;
      case '>':
        if (i + 1 < input.size() && input[i + 1] == '=') {
          tok.type = TokenType::kGe;
          i += 2;
        } else {
          tok.type = TokenType::kGt;
          ++i;
        }
        break;
      case '(':
        tok.type = TokenType::kLParen;
        ++i;
        break;
      case ')':
        tok.type = TokenType::kRParen;
        ++i;
        break;
      case ',':
        tok.type = TokenType::kComma;
        ++i;
        break;
      case '.':
        tok.type = TokenType::kDot;
        ++i;
        break;
      case '*':
        tok.type = TokenType::kStar;
        ++i;
        break;
      default:
        return Status::ParseError(
            StringFormat("unexpected character '%c' at offset %zu", c, i));
    }
    out.push_back(std::move(tok));
  }
  Token end;
  end.type = TokenType::kEnd;
  end.position = input.size();
  out.push_back(std::move(end));
  return out;
}

}  // namespace sqlparse
}  // namespace hypre
