// Tokenizer for SQL WHERE-clause predicate strings.
#pragma once

#include <string>
#include <vector>

#include "common/status.h"

namespace hypre {
namespace sqlparse {

enum class TokenType {
  kIdent,     // column / table names and unquoted words
  kInt,       // integer literal
  kReal,      // floating-point literal
  kString,    // quoted string literal (quotes stripped)
  kEq,        // =
  kNe,        // != or <>
  kLt,        // <
  kLe,        // <=
  kGt,        // >
  kGe,        // >=
  kLParen,    // (
  kRParen,    // )
  kComma,     // ,
  kDot,       // .
  kStar,      // *
  kAnd,       // AND (case insensitive)
  kOr,        // OR
  kNot,       // NOT
  kBetween,   // BETWEEN
  kIn,        // IN
  kEnd,       // end of input
};

const char* TokenTypeToString(TokenType type);

struct Token {
  TokenType type;
  std::string text;   // raw text (string literals: unquoted content)
  int64_t int_value = 0;
  double real_value = 0.0;
  size_t position = 0;  // byte offset in the input, for error messages
};

/// \brief Tokenizes `input`; the result always ends with a kEnd token.
///
/// Strings accept single or double quotes with doubled-quote escaping
/// (`'O''Hara'`). Numbers accept an optional leading '-' (the grammar has no
/// arithmetic, so '-' is unambiguous) and exponents. Keywords are case
/// insensitive.
Result<std::vector<Token>> Tokenize(const std::string& input);

}  // namespace sqlparse
}  // namespace hypre
