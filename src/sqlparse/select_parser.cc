#include "sqlparse/select_parser.h"

#include "common/string_util.h"
#include "sqlparse/lexer.h"
#include "sqlparse/parser.h"

namespace hypre {
namespace sqlparse {

namespace {

class SelectParser {
 public:
  SelectParser(std::string sql, std::vector<Token> tokens)
      : sql_(std::move(sql)), tokens_(std::move(tokens)) {}

  Result<SelectStatement> Parse() {
    SelectStatement stmt;
    HYPRE_RETURN_NOT_OK(ExpectKeyword("SELECT"));
    HYPRE_RETURN_NOT_OK(ParseItems(&stmt));
    HYPRE_RETURN_NOT_OK(ExpectKeyword("FROM"));
    HYPRE_ASSIGN_OR_RETURN(stmt.query.from, ExpectIdent("a table name"));

    while (PeekKeyword("JOIN")) {
      ++pos_;
      reldb::JoinSpec join;
      HYPRE_ASSIGN_OR_RETURN(join.right_table, ExpectIdent("a table name"));
      HYPRE_RETURN_NOT_OK(ExpectKeyword("ON"));
      HYPRE_ASSIGN_OR_RETURN(std::string left, ParseColumn());
      if (!Match(TokenType::kEq)) return Err("expected '=' in ON clause");
      HYPRE_ASSIGN_OR_RETURN(std::string right, ParseColumn());
      // Normalize: reldb wants the right side as a bare column of the
      // joined table. Accept either operand order.
      auto [rt, rc] = reldb::SplitQualifiedName(right);
      auto [lt, lc] = reldb::SplitQualifiedName(left);
      if (rt == join.right_table || rt.empty()) {
        join.left_column = left;
        join.right_column = rc;
      } else if (lt == join.right_table) {
        join.left_column = right;
        join.right_column = lc;
      } else {
        return Err("ON clause must reference the joined table '" +
                   join.right_table + "'");
      }
      stmt.query.joins.push_back(std::move(join));
    }

    if (PeekKeyword("WHERE")) {
      size_t where_start = Peek().position + 5;  // past "WHERE"
      ++pos_;
      // The predicate runs until ORDER/LIMIT at top level or end.
      int depth = 0;
      size_t end = sql_.size();
      for (; Peek().type != TokenType::kEnd; ++pos_) {
        const Token& token = Peek();
        if (token.type == TokenType::kLParen) ++depth;
        if (token.type == TokenType::kRParen) --depth;
        if (depth == 0 && token.type == TokenType::kIdent &&
            (EqualsIgnoreCase(token.text, "ORDER") ||
             EqualsIgnoreCase(token.text, "LIMIT"))) {
          end = token.position;
          break;
        }
      }
      HYPRE_ASSIGN_OR_RETURN(
          stmt.query.where,
          ParsePredicate(Trim(sql_.substr(where_start, end - where_start))));
    }

    if (PeekKeyword("ORDER")) {
      ++pos_;
      HYPRE_RETURN_NOT_OK(ExpectKeyword("BY"));
      HYPRE_ASSIGN_OR_RETURN(stmt.query.order_by, ParseColumn());
      if (PeekKeyword("DESC")) {
        stmt.query.order_desc = true;
        ++pos_;
      } else if (PeekKeyword("ASC")) {
        ++pos_;
      }
    }
    if (PeekKeyword("LIMIT")) {
      ++pos_;
      if (Peek().type != TokenType::kInt || Peek().int_value < 0) {
        return Err("expected a non-negative integer after LIMIT");
      }
      stmt.query.limit = static_cast<size_t>(Peek().int_value);
      ++pos_;
    }
    if (Peek().type != TokenType::kEnd) {
      return Err(StringFormat("trailing tokens at offset %zu",
                              Peek().position));
    }
    return stmt;
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  bool Match(TokenType type) {
    if (Peek().type != type) return false;
    ++pos_;
    return true;
  }
  bool PeekKeyword(const char* kw) const {
    return Peek().type == TokenType::kIdent &&
           EqualsIgnoreCase(Peek().text, kw);
  }
  Status Err(const std::string& what) const {
    return Status::ParseError("SELECT: " + what);
  }
  Status ExpectKeyword(const char* kw) {
    if (!PeekKeyword(kw)) {
      return Err(StringFormat("expected %s at offset %zu", kw,
                              Peek().position));
    }
    ++pos_;
    return Status::OK();
  }
  Result<std::string> ExpectIdent(const char* what) {
    if (Peek().type != TokenType::kIdent) {
      return Err(StringFormat("expected %s at offset %zu", what,
                              Peek().position));
    }
    std::string text = Peek().text;
    ++pos_;
    return text;
  }

  Result<std::string> ParseColumn() {
    HYPRE_ASSIGN_OR_RETURN(std::string first, ExpectIdent("a column name"));
    if (Match(TokenType::kDot)) {
      HYPRE_ASSIGN_OR_RETURN(std::string second,
                             ExpectIdent("a column name after '.'"));
      return first + "." + second;
    }
    return first;
  }

  Status ParseItems(SelectStatement* stmt) {
    if (Match(TokenType::kStar)) return Status::OK();  // select all
    if (PeekKeyword("COUNT")) {
      ++pos_;
      if (!Match(TokenType::kLParen)) return Err("expected '(' after COUNT");
      HYPRE_RETURN_NOT_OK(ExpectKeyword("DISTINCT"));
      HYPRE_ASSIGN_OR_RETURN(stmt->count_column, ParseColumn());
      if (!Match(TokenType::kRParen)) return Err("expected ')'");
      stmt->count_distinct = true;
      return Status::OK();
    }
    do {
      HYPRE_ASSIGN_OR_RETURN(std::string column, ParseColumn());
      stmt->query.select.push_back(std::move(column));
    } while (Match(TokenType::kComma));
    return Status::OK();
  }

  std::string sql_;
  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<SelectStatement> ParseSelect(const std::string& sql) {
  std::string text = Trim(sql);
  while (!text.empty() && text.back() == ';') {
    text.pop_back();
    text = Trim(text);
  }
  HYPRE_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  SelectParser parser(text, std::move(tokens));
  return parser.Parse();
}

Result<reldb::ResultSet> ExecuteSql(const reldb::Database& db,
                                    const std::string& sql) {
  HYPRE_ASSIGN_OR_RETURN(SelectStatement stmt, ParseSelect(sql));
  reldb::Executor exec(&db);
  if (stmt.count_distinct) {
    HYPRE_ASSIGN_OR_RETURN(size_t count,
                           exec.CountDistinct(stmt.query, stmt.count_column));
    reldb::ResultSet result;
    result.column_names.push_back("count(distinct " + stmt.count_column +
                                  ")");
    result.rows.push_back(
        {reldb::Value::Int(static_cast<int64_t>(count))});
    return result;
  }
  return exec.Execute(stmt.query);
}

}  // namespace sqlparse
}  // namespace hypre
