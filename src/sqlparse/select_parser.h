// SELECT statement parser: runs the dissertation's literal SQL.
//
// The evaluation chapters issue statements like
//
//   SELECT count(distinct dblp.pid)
//   FROM dblp join dblp_author on dblp.pid = dblp_author.pid
//   WHERE dblp.venue="INFOCOM" AND dblp_author.aid=2222;
//
// This parser turns that surface syntax into a reldb::Query (plus the
// COUNT(DISTINCT ...) aggregation flag), so the exact strings from the
// dissertation execute against the embedded engine.
//
// Grammar (keywords case insensitive; trailing ';' optional):
//   select   := SELECT items FROM IDENT (JOIN IDENT ON col = col)*
//               [WHERE predicate] [ORDER BY col [ASC|DESC]] [LIMIT INT]
//   items    := '*' | COUNT '(' DISTINCT col ')' | col (',' col)*
//   col      := IDENT ('.' IDENT)?
#pragma once

#include <string>

#include "common/status.h"
#include "reldb/executor.h"

namespace hypre {
namespace sqlparse {

/// \brief A parsed SELECT statement.
struct SelectStatement {
  reldb::Query query;
  bool count_distinct = false;
  std::string count_column;  // set when count_distinct
};

/// \brief Parses a full SELECT statement.
Result<SelectStatement> ParseSelect(const std::string& sql);

/// \brief Convenience: parses and executes against `db`. COUNT(DISTINCT x)
/// statements return a single-row, single-column result set.
Result<reldb::ResultSet> ExecuteSql(const reldb::Database& db,
                                    const std::string& sql);

}  // namespace sqlparse
}  // namespace hypre
