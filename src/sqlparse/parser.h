// Recursive-descent parser for SQL WHERE-clause predicates.
//
// HYPRE stores every preference as predicate text such as
//   dblp.venue="INFOCOM"
//   price BETWEEN 7000 AND 16000
//   make IN ('BMW', 'Honda')
//   (dblp.venue='VLDB' AND year>=2010) OR dblp_author.aid=128
// This parser turns that surface syntax into reldb expression ASTs; the
// inverse direction is Expr::ToString(), and ParsePredicate(expr.ToString())
// round-trips structurally (tested).
#pragma once

#include <string>

#include "common/status.h"
#include "reldb/expr.h"

namespace hypre {
namespace sqlparse {

/// \brief Parses a predicate string into an expression tree.
///
/// Grammar (operator precedence: NOT > AND > OR):
///   expr      := or_expr
///   or_expr   := and_expr (OR and_expr)*
///   and_expr  := unary (AND unary)*
///   unary     := NOT unary | primary
///   primary   := '(' expr ')' | predicate
///   predicate := operand cmp operand
///             |  column BETWEEN literal AND literal
///             |  column IN '(' literal (',' literal)* ')'
///   operand   := column | literal
///   column    := IDENT ('.' IDENT)?
Result<reldb::ExprPtr> ParsePredicate(const std::string& input);

}  // namespace sqlparse
}  // namespace hypre
