#include "reldb/schema.h"

namespace hypre {
namespace reldb {

Schema::Schema(std::vector<Column> columns) : columns_(std::move(columns)) {
  for (size_t i = 0; i < columns_.size(); ++i) {
    by_name_.emplace(columns_[i].name, i);
  }
}

int Schema::FindColumn(const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) return -1;
  return static_cast<int>(it->second);
}

Result<size_t> Schema::ResolveColumn(const std::string& name) const {
  int idx = FindColumn(name);
  if (idx < 0) return Status::NotFound("no column named '" + name + "'");
  return static_cast<size_t>(idx);
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += ", ";
    out += columns_[i].name;
    out += " ";
    out += ValueTypeToString(columns_[i].type);
  }
  out += ")";
  return out;
}

}  // namespace reldb
}  // namespace hypre
