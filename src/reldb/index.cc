#include "reldb/index.h"

namespace hypre {
namespace reldb {

const std::vector<RowId> HashIndex::kEmpty;

const std::vector<RowId>& HashIndex::Lookup(const Value& key) const {
  if (key.is_null()) return kEmpty;
  auto it = map_.find(key);
  if (it == map_.end()) return kEmpty;
  return it->second;
}

std::vector<RowId> OrderedIndex::Range(const Value& lo, bool lo_inclusive,
                                       const Value& hi,
                                       bool hi_inclusive) const {
  std::vector<RowId> out;
  auto begin = map_.begin();
  auto end = map_.end();
  if (!lo.is_null()) {
    begin = lo_inclusive ? map_.lower_bound(lo) : map_.upper_bound(lo);
  } else {
    // Skip NULL keys: predicates never match NULL.
    begin = map_.upper_bound(Value::Null());
  }
  if (!hi.is_null()) {
    end = hi_inclusive ? map_.upper_bound(hi) : map_.lower_bound(hi);
  }
  for (auto it = begin; it != end; ++it) out.push_back(it->second);
  return out;
}

}  // namespace reldb
}  // namespace hypre
