#include "reldb/index.h"

#include <algorithm>

namespace hypre {
namespace reldb {

const std::vector<RowId> HashIndex::kEmpty;

void HashIndex::Erase(const Value& key, RowId row) {
  auto it = map_.find(key);
  if (it == map_.end()) return;
  auto& rows = it->second;
  auto pos = std::find(rows.begin(), rows.end(), row);
  if (pos == rows.end()) return;
  rows.erase(pos);
  if (rows.empty()) map_.erase(it);
}

const std::vector<RowId>& HashIndex::Lookup(const Value& key) const {
  if (key.is_null()) return kEmpty;
  auto it = map_.find(key);
  if (it == map_.end()) return kEmpty;
  return it->second;
}

void OrderedIndex::Erase(const Value& key, RowId row) {
  auto [begin, end] = map_.equal_range(key);
  for (auto it = begin; it != end; ++it) {
    if (it->second == row) {
      map_.erase(it);
      return;
    }
  }
}

std::vector<RowId> OrderedIndex::Range(const Value& lo, bool lo_inclusive,
                                       const Value& hi,
                                       bool hi_inclusive) const {
  std::vector<RowId> out;
  auto begin = map_.begin();
  auto end = map_.end();
  if (!lo.is_null()) {
    begin = lo_inclusive ? map_.lower_bound(lo) : map_.upper_bound(lo);
  } else {
    // Skip NULL keys: predicates never match NULL.
    begin = map_.upper_bound(Value::Null());
  }
  if (!hi.is_null()) {
    end = hi_inclusive ? map_.upper_bound(hi) : map_.lower_bound(hi);
  }
  for (auto it = begin; it != end; ++it) out.push_back(it->second);
  return out;
}

}  // namespace reldb
}  // namespace hypre
