#include "reldb/table.h"

#include <algorithm>

#include "common/string_util.h"
#include "reldb/mutation_journal.h"

namespace hypre {
namespace reldb {

Status Table::Append(Row row) {
  if (row.size() != schema_.num_columns()) {
    return Status::InvalidArgument(StringFormat(
        "table '%s' expects %zu columns, got %zu", name_.c_str(),
        schema_.num_columns(), row.size()));
  }
  for (size_t i = 0; i < row.size(); ++i) {
    if (row[i].is_null()) continue;
    ValueType expected = schema_.column(i).type;
    ValueType actual = row[i].type();
    bool ok = expected == actual ||
              // INT64 values are acceptable in DOUBLE columns.
              (expected == ValueType::kDouble && actual == ValueType::kInt64);
    if (!ok) {
      return Status::InvalidArgument(StringFormat(
          "table '%s' column '%s' expects %s, got %s", name_.c_str(),
          schema_.column(i).name.c_str(), ValueTypeToString(expected),
          ValueTypeToString(actual)));
    }
  }
  AppendUnchecked(std::move(row));
  return Status::OK();
}

RowId Table::AppendUnchecked(Row row) {
  RowId id = rows_.size();
  rows_.push_back(std::move(row));
  deleted_.push_back(0);
  IndexRow(id);
  if (journal_ != nullptr) journal_->RecordAppend(name_, id);
  return id;
}

RowId Table::RestoreRow(Row row, bool deleted) {
  RowId id = rows_.size();
  rows_.push_back(std::move(row));
  deleted_.push_back(deleted ? 1 : 0);
  if (deleted) ++num_deleted_;
  return id;
}

Status Table::Delete(RowId id) {
  if (id >= rows_.size()) {
    return Status::InvalidArgument(StringFormat(
        "table '%s' has no row %llu (%zu rows)", name_.c_str(),
        static_cast<unsigned long long>(id), rows_.size()));
  }
  if (deleted_[id] != 0) {
    return Status::InvalidArgument(StringFormat(
        "table '%s' row %llu is already deleted", name_.c_str(),
        static_cast<unsigned long long>(id)));
  }
  deleted_[id] = 1;
  ++num_deleted_;
  const Row& r = rows_[id];
  for (auto& idx : hash_indexes_) idx->Erase(r[idx->column()], id);
  for (auto& idx : ordered_indexes_) idx->Erase(r[idx->column()], id);
  if (journal_ != nullptr) journal_->RecordDelete(name_, id);
  return Status::OK();
}

void Table::IndexRow(RowId id) {
  const Row& r = rows_[id];
  for (auto& idx : hash_indexes_) idx->Insert(r[idx->column()], id);
  for (auto& idx : ordered_indexes_) idx->Insert(r[idx->column()], id);
}

Status Table::CreateHashIndex(const std::string& column_name) {
  HYPRE_ASSIGN_OR_RETURN(size_t col, schema_.ResolveColumn(column_name));
  // An explicit build supersedes a lazy declaration on the same column.
  pending_hash_.erase(
      std::remove(pending_hash_.begin(), pending_hash_.end(), col),
      pending_hash_.end());
  // Replace an existing index on the same column, if any.
  for (auto& idx : hash_indexes_) {
    if (idx->column() == col) {
      idx = std::make_unique<HashIndex>(col);
      for (RowId id = 0; id < rows_.size(); ++id) {
        if (deleted_[id] == 0) idx->Insert(rows_[id][col], id);
      }
      return Status::OK();
    }
  }
  auto idx = std::make_unique<HashIndex>(col);
  for (RowId id = 0; id < rows_.size(); ++id) {
    if (deleted_[id] == 0) idx->Insert(rows_[id][col], id);
  }
  hash_indexes_.push_back(std::move(idx));
  return Status::OK();
}

Status Table::CreateOrderedIndex(const std::string& column_name) {
  HYPRE_ASSIGN_OR_RETURN(size_t col, schema_.ResolveColumn(column_name));
  pending_ordered_.erase(
      std::remove(pending_ordered_.begin(), pending_ordered_.end(), col),
      pending_ordered_.end());
  for (auto& idx : ordered_indexes_) {
    if (idx->column() == col) {
      idx = std::make_unique<OrderedIndex>(col);
      for (RowId id = 0; id < rows_.size(); ++id) {
        if (deleted_[id] == 0) idx->Insert(rows_[id][col], id);
      }
      return Status::OK();
    }
  }
  auto idx = std::make_unique<OrderedIndex>(col);
  for (RowId id = 0; id < rows_.size(); ++id) {
    if (deleted_[id] == 0) idx->Insert(rows_[id][col], id);
  }
  ordered_indexes_.push_back(std::move(idx));
  return Status::OK();
}

Status Table::DeclareHashIndex(const std::string& column_name) {
  HYPRE_ASSIGN_OR_RETURN(size_t col, schema_.ResolveColumn(column_name));
  for (const auto& idx : hash_indexes_) {
    if (idx->column() == col) return Status::OK();
  }
  if (std::find(pending_hash_.begin(), pending_hash_.end(), col) ==
      pending_hash_.end()) {
    pending_hash_.push_back(col);
  }
  return Status::OK();
}

Status Table::DeclareOrderedIndex(const std::string& column_name) {
  HYPRE_ASSIGN_OR_RETURN(size_t col, schema_.ResolveColumn(column_name));
  for (const auto& idx : ordered_indexes_) {
    if (idx->column() == col) return Status::OK();
  }
  if (std::find(pending_ordered_.begin(), pending_ordered_.end(), col) ==
      pending_ordered_.end()) {
    pending_ordered_.push_back(col);
  }
  return Status::OK();
}

std::vector<std::string> Table::HashIndexColumns() const {
  std::vector<std::string> out;
  out.reserve(hash_indexes_.size() + pending_hash_.size());
  for (const auto& idx : hash_indexes_) {
    out.push_back(schema_.column(idx->column()).name);
  }
  for (size_t col : pending_hash_) {
    out.push_back(schema_.column(col).name);
  }
  return out;
}

std::vector<std::string> Table::OrderedIndexColumns() const {
  std::vector<std::string> out;
  out.reserve(ordered_indexes_.size() + pending_ordered_.size());
  for (const auto& idx : ordered_indexes_) {
    out.push_back(schema_.column(idx->column()).name);
  }
  for (size_t col : pending_ordered_) {
    out.push_back(schema_.column(col).name);
  }
  return out;
}

const HashIndex* Table::MaterializeHashIndex(size_t col) const {
  auto idx = std::make_unique<HashIndex>(col);
  for (RowId id = 0; id < rows_.size(); ++id) {
    if (deleted_[id] == 0) idx->Insert(rows_[id][col], id);
  }
  hash_indexes_.push_back(std::move(idx));
  return hash_indexes_.back().get();
}

const OrderedIndex* Table::MaterializeOrderedIndex(size_t col) const {
  auto idx = std::make_unique<OrderedIndex>(col);
  for (RowId id = 0; id < rows_.size(); ++id) {
    if (deleted_[id] == 0) idx->Insert(rows_[id][col], id);
  }
  ordered_indexes_.push_back(std::move(idx));
  return ordered_indexes_.back().get();
}

const HashIndex* Table::GetHashIndex(const std::string& column_name) const {
  int col = schema_.FindColumn(column_name);
  if (col < 0) return nullptr;
  for (const auto& idx : hash_indexes_) {
    if (idx->column() == static_cast<size_t>(col)) return idx.get();
  }
  for (auto it = pending_hash_.begin(); it != pending_hash_.end(); ++it) {
    if (*it == static_cast<size_t>(col)) {
      pending_hash_.erase(it);
      return MaterializeHashIndex(static_cast<size_t>(col));
    }
  }
  return nullptr;
}

const OrderedIndex* Table::GetOrderedIndex(
    const std::string& column_name) const {
  int col = schema_.FindColumn(column_name);
  if (col < 0) return nullptr;
  for (const auto& idx : ordered_indexes_) {
    if (idx->column() == static_cast<size_t>(col)) return idx.get();
  }
  for (auto it = pending_ordered_.begin(); it != pending_ordered_.end();
       ++it) {
    if (*it == static_cast<size_t>(col)) {
      pending_ordered_.erase(it);
      return MaterializeOrderedIndex(static_cast<size_t>(col));
    }
  }
  return nullptr;
}

}  // namespace reldb
}  // namespace hypre
