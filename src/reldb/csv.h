// CSV import/export for reldb tables.
//
// Lets users load a real DBLP dump (or any tabular data) into the engine
// instead of the synthetic generator, and dump query results for plotting.
// Dialect: comma separator, double-quote quoting with doubled-quote
// escaping, first line is the header. Values are parsed according to the
// target schema; empty fields load as NULL.
#pragma once

#include <iosfwd>
#include <string>

#include "common/status.h"
#include "reldb/database.h"
#include "reldb/executor.h"

namespace hypre {
namespace reldb {

/// \brief Writes `table` as CSV (header + rows).
Status WriteCsv(const Table& table, std::ostream* out);

/// \brief Writes a query result as CSV.
Status WriteCsv(const ResultSet& result, std::ostream* out);

/// \brief Appends rows from CSV into an existing table. The header must
/// match the schema's column names (order included). Returns rows loaded.
/// Appends route through Table::Append, so bulk loads land in the owning
/// database's mutation journal and a later ProbeEngine::Refresh() picks
/// them up. Errors carry `source_name` (the file path when the caller has
/// one), the offending data row and line, and the byte offset of that line
/// in the stream, so a bad record in a multi-gigabyte dump is addressable
/// directly.
Result<size_t> AppendCsv(std::istream* in, Table* table,
                         const std::string& source_name = "<csv>");

/// \brief Opens `path` and appends its rows into `table`; error context
/// names the path and byte offset.
Result<size_t> AppendCsvFile(const std::string& path, Table* table);

/// \brief Creates `table_name` in `db` by inferring the schema from the CSV
/// header and the first data row (INT64 if it parses as an integer, DOUBLE
/// if as a real, STRING otherwise; empty first-row fields infer STRING),
/// then loads all rows. Returns the created table.
Result<Table*> LoadCsvAsTable(std::istream* in, const std::string& table_name,
                              Database* db);

}  // namespace reldb
}  // namespace hypre
