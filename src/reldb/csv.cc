#include "reldb/csv.h"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <istream>
#include <ostream>

#include "common/string_util.h"

namespace hypre {
namespace reldb {

namespace {

/// Quotes a field if it contains separator/quote/newline characters.
std::string QuoteField(const std::string& raw) {
  bool needs_quotes = raw.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return raw;
  std::string out = "\"";
  for (char c : raw) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out += "\"";
  return out;
}

std::string ValueToField(const Value& value) {
  switch (value.type()) {
    case ValueType::kNull:
      return "";
    case ValueType::kInt64:
      return std::to_string(value.AsInt());
    case ValueType::kDouble:
      return StringFormat("%.17g", value.AsDouble());
    case ValueType::kString:
      return QuoteField(value.AsString());
  }
  return "";
}

/// Splits one CSV record (handles quoting); `line` excludes the newline.
Result<std::vector<std::string>> SplitRecord(const std::string& line) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current.push_back(c);
      }
      continue;
    }
    if (c == '"') {
      if (!current.empty()) {
        return Status::ParseError("unexpected quote inside unquoted field");
      }
      in_quotes = true;
      continue;
    }
    if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
      continue;
    }
    if (c == '\r') continue;
    current.push_back(c);
  }
  if (in_quotes) return Status::ParseError("unterminated quoted field");
  fields.push_back(std::move(current));
  return fields;
}

bool LooksLikeInt(const std::string& s) {
  if (s.empty()) return false;
  size_t i = (s[0] == '-' || s[0] == '+') ? 1 : 0;
  if (i == s.size()) return false;
  for (; i < s.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(s[i]))) return false;
  }
  return true;
}

bool LooksLikeReal(const std::string& s) {
  if (s.empty()) return false;
  char* end = nullptr;
  std::strtod(s.c_str(), &end);
  return end != nullptr && *end == '\0' && end != s.c_str();
}

Result<Value> ParseField(const std::string& field, ValueType type) {
  if (field.empty()) return Value::Null();
  switch (type) {
    case ValueType::kInt64: {
      if (!LooksLikeInt(field)) {
        return Status::ParseError("'" + field + "' is not an integer");
      }
      return Value::Int(std::strtoll(field.c_str(), nullptr, 10));
    }
    case ValueType::kDouble: {
      if (!LooksLikeReal(field)) {
        return Status::ParseError("'" + field + "' is not a number");
      }
      return Value::Real(std::strtod(field.c_str(), nullptr));
    }
    case ValueType::kString:
    case ValueType::kNull:
      return Value::Str(field);
  }
  return Value::Null();
}

}  // namespace

Status WriteCsv(const Table& table, std::ostream* out) {
  for (size_t c = 0; c < table.schema().num_columns(); ++c) {
    if (c > 0) *out << ",";
    *out << QuoteField(table.schema().column(c).name);
  }
  *out << "\n";
  for (RowId id = 0; id < table.num_rows(); ++id) {
    if (table.is_deleted(id)) continue;  // tombstones are not exported
    const Row& row = table.row(id);
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) *out << ",";
      *out << ValueToField(row[c]);
    }
    *out << "\n";
  }
  if (!out->good()) return Status::Internal("CSV write failed");
  return Status::OK();
}

Status WriteCsv(const ResultSet& result, std::ostream* out) {
  for (size_t c = 0; c < result.column_names.size(); ++c) {
    if (c > 0) *out << ",";
    *out << QuoteField(result.column_names[c]);
  }
  *out << "\n";
  for (const auto& row : result.rows) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) *out << ",";
      *out << ValueToField(row[c]);
    }
    *out << "\n";
  }
  if (!out->good()) return Status::Internal("CSV write failed");
  return Status::OK();
}

Result<size_t> AppendCsv(std::istream* in, Table* table,
                         const std::string& source_name) {
  std::string line;
  if (!std::getline(*in, line)) {
    return Status::ParseError("'" + source_name + "': empty CSV input");
  }
  HYPRE_ASSIGN_OR_RETURN(std::vector<std::string> header, SplitRecord(line));
  if (header.size() != table->schema().num_columns()) {
    return Status::InvalidArgument(StringFormat(
        "'%s': CSV header has %zu columns; table expects %zu",
        source_name.c_str(), header.size(), table->schema().num_columns()));
  }
  for (size_t c = 0; c < header.size(); ++c) {
    if (Trim(header[c]) != table->schema().column(c).name) {
      return Status::InvalidArgument(
          "'" + source_name + "': CSV header mismatch at column '" +
          header[c] + "' (expected '" + table->schema().column(c).name +
          "')");
    }
  }
  size_t loaded = 0;
  size_t line_number = 1;
  // Byte offset of the line currently being parsed (start-of-line), kept by
  // accumulating consumed lines plus their newline.
  uint64_t byte_offset = line.size() + 1;
  uint64_t line_offset = byte_offset;
  while (std::getline(*in, line)) {
    ++line_number;
    line_offset = byte_offset;
    byte_offset += line.size() + 1;
    if (line.empty()) continue;
    // Errors below name the source, the data row (1-based, blank lines
    // skipped), the physical line, AND the byte offset of that line, so a
    // bad record is addressable with `tail -c +offset` as well as an editor.
    auto split = SplitRecord(line);
    if (!split.ok()) {
      return Status::ParseError(StringFormat(
          "'%s' row %zu (line %zu, byte %llu): %s", source_name.c_str(),
          loaded + 1, line_number, (unsigned long long)line_offset,
          split.status().message().c_str()));
    }
    std::vector<std::string> fields = std::move(split).TakeValue();
    if (fields.size() != table->schema().num_columns()) {
      return Status::ParseError(StringFormat(
          "'%s' row %zu (line %zu, byte %llu) has %zu fields, expected %zu",
          source_name.c_str(), loaded + 1, line_number,
          (unsigned long long)line_offset, fields.size(),
          table->schema().num_columns()));
    }
    Row row;
    row.reserve(fields.size());
    for (size_t c = 0; c < fields.size(); ++c) {
      auto v = ParseField(fields[c], table->schema().column(c).type);
      if (!v.ok()) {
        return Status::ParseError(StringFormat(
            "'%s' row %zu (line %zu, byte %llu) column '%s': %s",
            source_name.c_str(), loaded + 1, line_number,
            (unsigned long long)line_offset,
            table->schema().column(c).name.c_str(),
            v.status().message().c_str()));
      }
      row.push_back(std::move(v).TakeValue());
    }
    Status appended = table->Append(std::move(row));
    if (!appended.ok()) {
      return Status::InvalidArgument(StringFormat(
          "'%s' row %zu (line %zu, byte %llu): %s", source_name.c_str(),
          loaded + 1, line_number, (unsigned long long)line_offset,
          appended.message().c_str()));
    }
    ++loaded;
  }
  return loaded;
}

Result<size_t> AppendCsvFile(const std::string& path, Table* table) {
  std::ifstream file(path);
  if (!file.is_open()) {
    return Status::InvalidArgument("cannot open CSV for reading: " + path);
  }
  return AppendCsv(&file, table, path);
}

Result<Table*> LoadCsvAsTable(std::istream* in, const std::string& table_name,
                              Database* db) {
  std::string header_line;
  if (!std::getline(*in, header_line)) {
    return Status::ParseError("empty CSV input");
  }
  HYPRE_ASSIGN_OR_RETURN(std::vector<std::string> header,
                         SplitRecord(header_line));

  // Peek the first data row to infer types.
  std::string first_line;
  std::vector<std::string> first_fields;
  bool has_data = false;
  while (std::getline(*in, first_line)) {
    if (first_line.empty()) continue;
    HYPRE_ASSIGN_OR_RETURN(first_fields, SplitRecord(first_line));
    has_data = true;
    break;
  }
  std::vector<Column> columns;
  for (size_t c = 0; c < header.size(); ++c) {
    ValueType type = ValueType::kString;
    if (has_data && c < first_fields.size()) {
      const std::string& sample = first_fields[c];
      if (LooksLikeInt(sample)) {
        type = ValueType::kInt64;
      } else if (LooksLikeReal(sample)) {
        type = ValueType::kDouble;
      }
    }
    columns.push_back({Trim(header[c]), type});
  }
  HYPRE_ASSIGN_OR_RETURN(Table * table,
                         db->CreateTable(table_name, Schema(columns)));
  if (!has_data) return table;

  // Load the peeked row, then the rest.
  if (first_fields.size() != columns.size()) {
    return Status::ParseError("first data row does not match the header");
  }
  Row first_row;
  for (size_t c = 0; c < first_fields.size(); ++c) {
    HYPRE_ASSIGN_OR_RETURN(Value v,
                           ParseField(first_fields[c], columns[c].type));
    first_row.push_back(std::move(v));
  }
  HYPRE_RETURN_NOT_OK(table->Append(std::move(first_row)));

  std::string line;
  size_t line_number = 2;
  while (std::getline(*in, line)) {
    ++line_number;
    if (line.empty()) continue;
    HYPRE_ASSIGN_OR_RETURN(std::vector<std::string> fields,
                           SplitRecord(line));
    if (fields.size() != columns.size()) {
      return Status::ParseError(StringFormat(
          "line %zu has %zu fields, expected %zu", line_number,
          fields.size(), columns.size()));
    }
    Row row;
    for (size_t c = 0; c < fields.size(); ++c) {
      HYPRE_ASSIGN_OR_RETURN(Value v, ParseField(fields[c],
                                                 columns[c].type));
      row.push_back(std::move(v));
    }
    HYPRE_RETURN_NOT_OK(table->Append(std::move(row)));
  }
  return table;
}

}  // namespace reldb
}  // namespace hypre
