// Query execution: filter, hash join, projection, aggregation.
//
// The preference-aware query enhancement of HYPRE (dissertation §4.6) turns
// a base query plus a combined preference predicate into
//   SELECT ... FROM dblp JOIN dblp_author ON dblp.pid = dblp_author.pid
//   WHERE <combined predicate>
// and the combination algorithms issue thousands of COUNT(DISTINCT pid)
// probes. The executor supports exactly this query class, with
// predicate push-down to base tables and index-backed candidate pruning so
// the probes stay cheap.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "reldb/database.h"
#include "reldb/expr.h"

namespace hypre {
namespace reldb {

/// \brief One equi-join step: `... JOIN right_table ON left = right`.
/// `left_column` may reference any table already in scope (qualified
/// "table.column" or unqualified); `right_column` belongs to `right_table`.
struct JoinSpec {
  std::string right_table;
  std::string left_column;
  std::string right_column;
};

/// \brief A SELECT query over one table plus optional chained equi-joins.
struct Query {
  std::string from;
  std::vector<JoinSpec> joins;
  ExprPtr where;  // may be null (no filter)
  /// Projected columns, qualified or unqualified; empty selects all columns
  /// of all tables in scope.
  std::vector<std::string> select;
  std::string order_by;  // optional, qualified or unqualified
  bool order_desc = false;
  size_t limit = 0;  // 0 means unlimited

  /// \brief Renders the query as SQL (for logs, examples and docs).
  std::string ToSql() const;
};

/// \brief Materialized query result.
struct ResultSet {
  std::vector<std::string> column_names;
  std::vector<Row> rows;
};

/// \brief Aggregate functions for grouped queries.
enum class AggregateFunc {
  kCount,          // COUNT(*)
  kCountDistinct,  // COUNT(DISTINCT col)
  kSum,
  kAvg,
  kMin,
  kMax,
};

/// \brief One aggregate output: function + argument column (ignored for
/// kCount).
struct AggregateSpec {
  AggregateFunc func = AggregateFunc::kCount;
  std::string column;
};

/// \brief SELECT group_by..., aggregates... FROM ... GROUP BY group_by.
/// `base.select/order_by/limit` are ignored; grouping keys order the
/// output.
struct GroupByQuery {
  Query base;
  std::vector<std::string> group_by;  // may be empty: one global group
  std::vector<AggregateSpec> aggregates;
};

/// \brief Splits "t.c" into {"t", "c"}; plain "c" yields {"", "c"}.
std::pair<std::string, std::string> SplitQualifiedName(
    const std::string& name);

/// \brief Interns distinct values into contiguous dense ids (first-seen
/// order). Equality/hashing follow Value::Compare, so Int(2) and Real(2.0)
/// share an id, matching DistinctValues' dedup semantics. The dense ids are
/// the bit positions used by the bitmap-backed probe engine.
class DenseDictionary {
 public:
  static constexpr uint32_t kNotFound = ~uint32_t{0};

  /// \brief Id of `v`, interning it if absent.
  uint32_t Intern(const Value& v);
  /// \brief Id of `v`, or kNotFound if it was never interned.
  uint32_t Lookup(const Value& v) const;

  /// \brief Drops the value -> id mapping while keeping the id slot
  /// allocated (the stale value stays addressable through value()). The
  /// delta engine tombstones a dead key this way so its dense id can be
  /// recycled later.
  void Forget(const Value& v);

  /// \brief Rebinds a previously Forgotten id to a new value — dense-id
  /// recycling. The id must not currently be mapped to any value.
  void Reassign(uint32_t id, const Value& v);

  /// \brief Snapshot-restore hook: appends `v` as the next dense id. When
  /// `live` is false the value -> id mapping is NOT created (the slot is a
  /// tombstone whose stale value must stay addressable through value() but
  /// must not shadow a live key that re-interned the same value under a
  /// different id). Ids must be restored in order, into an empty dictionary.
  uint32_t Restore(const Value& v, bool live);

  /// \brief Pre-sizes the slot vector and id map for a bulk Restore pass.
  void Reserve(size_t num_keys) {
    values_.reserve(num_keys);
    ids_.reserve(num_keys);
  }

  const Value& value(uint32_t id) const { return values_[id]; }
  size_t size() const { return values_.size(); }

 private:
  std::vector<Value> values_;
  std::unordered_map<Value, uint32_t, ValueHash> ids_;
};

class Executor {
 public:
  explicit Executor(const Database* db) : db_(db) {}

  /// \brief Runs the query and materializes all output rows.
  Result<ResultSet> Execute(const Query& query) const;

  /// \brief COUNT(DISTINCT column) over the query's matching rows.
  Result<size_t> CountDistinct(const Query& query,
                               const std::string& column) const;

  /// \brief Distinct values of `column` over the matching rows, in first-seen
  /// order.
  Result<std::vector<Value>> DistinctValues(const Query& query,
                                            const std::string& column) const;

  /// \brief Interns the distinct values of `column` over the matching rows
  /// into `dict` (first-seen order). The dense-dictionary hook behind the
  /// probe engine's one-time key-universe scan.
  Status InternDistinctValues(const Query& query, const std::string& column,
                              DenseDictionary* dict) const;

  /// \brief Streams the dense id (under `dict`) of `column` for every
  /// matching row; values absent from the dictionary are skipped. Ids repeat
  /// when several joined rows share a key — callers typically OR them into a
  /// bitmap, which dedups for free.
  Status ForEachDenseId(const Query& query, const std::string& column,
                        const DenseDictionary& dict,
                        const std::function<void(uint32_t)>& fn) const;

  /// \brief Bulk variant of ForEachDenseId for many predicates at once: runs
  /// `query` ONCE (its own WHERE stays a hard constraint) and, for every
  /// matching joined row, evaluates each of `predicates` against that row,
  /// calling `fn(pred_idx, dense_id)` for the ones that hold. One pass over
  /// the executor replaces one query per predicate — the bulk leaf-prefetch
  /// hook behind the probe engine's PrefetchLeaves.
  Status ForEachDenseIdMulti(
      const Query& query, const std::string& column,
      const DenseDictionary& dict, const std::vector<ExprPtr>& predicates,
      const std::function<void(size_t, uint32_t)>& fn) const;

  // --- Delta-maintenance entry points -------------------------------------
  //
  // The three hooks below back the probe engine's incremental Refresh path
  // (src/hypre/delta_engine.*). They stream raw key Values rather than
  // dense ids because the delta consumer grows the dictionary as it goes.

  /// \brief Streams the value of `column` for every matching joined tuple,
  /// evaluating `predicates` against each: `tuple_fn(key)` once per tuple,
  /// then `pred_fn(p, key)` for each predicate that holds. One pass answers
  /// "does this key exist" and "which leaves does it match" together — the
  /// per-key recompute hook behind delete maintenance.
  Status ForEachKeyedMatch(
      const Query& query, const std::string& column,
      const std::vector<ExprPtr>& predicates,
      const std::function<void(const Value&)>& tuple_fn,
      const std::function<void(size_t, const Value&)>& pred_fn) const;

  /// \brief Like ForEachKeyedMatch, restricted to the joined tuples that did
  /// NOT exist before the per-table append watermarks: a tuple qualifies iff
  /// at least one slot's row id is >= first_new_row[that slot's table].
  /// Implemented as one restricted pass per watermarked slot, so a tuple
  /// whose new rows span several slots is emitted once per such slot —
  /// consumers must be idempotent (bitmap Set is). Tables absent from the
  /// map are treated as having no new rows.
  Status ForEachAppendedMatch(
      const Query& query, const std::string& column,
      const std::unordered_map<std::string, RowId>& first_new_row,
      const std::vector<ExprPtr>& predicates,
      const std::function<void(const Value&)>& tuple_fn,
      const std::function<void(size_t, const Value&)>& pred_fn) const;

  /// \brief Streams the value of `column` for every joined tuple containing
  /// row `row` of `table`, treating that row — and any rows listed in
  /// `extra_visible` — as visible even if tombstoned. This reconstructs the
  /// pre-delete join state: the tuples a freshly deleted row participated in
  /// name exactly the keys whose leaf memberships must be recomputed.
  Status ForEachMatchOfRow(
      const Query& query, const std::string& column, const std::string& table,
      RowId row,
      const std::unordered_map<std::string, std::vector<RowId>>& extra_visible,
      const std::function<void(const Value&)>& fn) const;

  /// \brief Grouped aggregation. Output columns: the group-by columns then
  /// one per aggregate; rows sorted by the group key. SUM/AVG require
  /// numeric (or NULL) inputs; NULLs are skipped by all aggregates except
  /// COUNT(*).
  Result<ResultSet> ExecuteGroupBy(const GroupByQuery& query) const;

 private:
  const Database* db_;
};

}  // namespace reldb
}  // namespace hypre
