#include "reldb/expr.h"

namespace hypre {
namespace reldb {

const char* CompareOpToString(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "!=";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

std::string ColumnRefExpr::QualifiedName() const {
  if (table_.empty()) return column_;
  return table_ + "." + column_;
}

std::string CompareExpr::ToString() const {
  return lhs_->ToString() + CompareOpToString(op_) + rhs_->ToString();
}

std::string BetweenExpr::ToString() const {
  return column_->ToString() + " BETWEEN " + lo_.ToString() + " AND " +
         hi_.ToString();
}

std::string InListExpr::ToString() const {
  std::string out = column_->ToString() + " IN (";
  for (size_t i = 0; i < values_.size(); ++i) {
    if (i > 0) out += ", ";
    out += values_[i].ToString();
  }
  out += ")";
  return out;
}

std::string NaryExpr::ToString() const {
  const char* sep = kind() == ExprKind::kAnd ? " AND " : " OR ";
  std::string out;
  for (size_t i = 0; i < children_.size(); ++i) {
    if (i > 0) out += sep;
    const Expr& c = *children_[i];
    bool needs_parens = c.kind() == ExprKind::kAnd || c.kind() == ExprKind::kOr;
    if (needs_parens) out += "(";
    out += c.ToString();
    if (needs_parens) out += ")";
  }
  return out;
}

ExprPtr Col(std::string table, std::string column) {
  return std::make_shared<ColumnRefExpr>(std::move(table), std::move(column));
}

ExprPtr Col(std::string column) {
  return std::make_shared<ColumnRefExpr>("", std::move(column));
}

ExprPtr Lit(Value value) { return std::make_shared<LiteralExpr>(std::move(value)); }

ExprPtr Cmp(CompareOp op, ExprPtr lhs, ExprPtr rhs) {
  return std::make_shared<CompareExpr>(op, std::move(lhs), std::move(rhs));
}

ExprPtr Eq(ExprPtr lhs, ExprPtr rhs) {
  return Cmp(CompareOp::kEq, std::move(lhs), std::move(rhs));
}

ExprPtr Between(ExprPtr column, Value lo, Value hi) {
  return std::make_shared<BetweenExpr>(std::move(column), std::move(lo),
                                       std::move(hi));
}

ExprPtr In(ExprPtr column, std::vector<Value> values) {
  return std::make_shared<InListExpr>(std::move(column), std::move(values));
}

ExprPtr MakeAnd(std::vector<ExprPtr> children) {
  if (children.size() == 1) return children[0];
  return std::make_shared<NaryExpr>(ExprKind::kAnd, std::move(children));
}

ExprPtr MakeOr(std::vector<ExprPtr> children) {
  if (children.size() == 1) return children[0];
  return std::make_shared<NaryExpr>(ExprKind::kOr, std::move(children));
}

ExprPtr MakeAnd(ExprPtr a, ExprPtr b) {
  return MakeAnd(std::vector<ExprPtr>{std::move(a), std::move(b)});
}

ExprPtr MakeOr(ExprPtr a, ExprPtr b) {
  return MakeOr(std::vector<ExprPtr>{std::move(a), std::move(b)});
}

ExprPtr MakeNot(ExprPtr child) {
  return std::make_shared<NotExpr>(std::move(child));
}

namespace {

Result<Value> EvaluateScalar(const Expr& expr, const RowAccessor& row) {
  switch (expr.kind()) {
    case ExprKind::kColumnRef: {
      const auto& col = static_cast<const ColumnRefExpr&>(expr);
      return row.Get(col.table(), col.column());
    }
    case ExprKind::kLiteral:
      return static_cast<const LiteralExpr&>(expr).value();
    default:
      return Status::InvalidArgument("expected a scalar expression, got: " +
                                     expr.ToString());
  }
}

bool ApplyCompare(CompareOp op, const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return false;
  int c = a.Compare(b);
  switch (op) {
    case CompareOp::kEq:
      return c == 0;
    case CompareOp::kNe:
      return c != 0;
    case CompareOp::kLt:
      return c < 0;
    case CompareOp::kLe:
      return c <= 0;
    case CompareOp::kGt:
      return c > 0;
    case CompareOp::kGe:
      return c >= 0;
  }
  return false;
}

}  // namespace

Result<bool> Evaluate(const Expr& expr, const RowAccessor& row) {
  switch (expr.kind()) {
    case ExprKind::kCompare: {
      const auto& cmp = static_cast<const CompareExpr&>(expr);
      HYPRE_ASSIGN_OR_RETURN(Value a, EvaluateScalar(*cmp.lhs(), row));
      HYPRE_ASSIGN_OR_RETURN(Value b, EvaluateScalar(*cmp.rhs(), row));
      return ApplyCompare(cmp.op(), a, b);
    }
    case ExprKind::kBetween: {
      const auto& bt = static_cast<const BetweenExpr&>(expr);
      HYPRE_ASSIGN_OR_RETURN(Value v, EvaluateScalar(*bt.column(), row));
      return ApplyCompare(CompareOp::kGe, v, bt.lo()) &&
             ApplyCompare(CompareOp::kLe, v, bt.hi());
    }
    case ExprKind::kInList: {
      const auto& in = static_cast<const InListExpr&>(expr);
      HYPRE_ASSIGN_OR_RETURN(Value v, EvaluateScalar(*in.column(), row));
      for (const auto& candidate : in.values()) {
        if (ApplyCompare(CompareOp::kEq, v, candidate)) return true;
      }
      return false;
    }
    case ExprKind::kAnd: {
      const auto& nary = static_cast<const NaryExpr&>(expr);
      for (const auto& child : nary.children()) {
        HYPRE_ASSIGN_OR_RETURN(bool v, Evaluate(*child, row));
        if (!v) return false;
      }
      return true;
    }
    case ExprKind::kOr: {
      const auto& nary = static_cast<const NaryExpr&>(expr);
      for (const auto& child : nary.children()) {
        HYPRE_ASSIGN_OR_RETURN(bool v, Evaluate(*child, row));
        if (v) return true;
      }
      return false;
    }
    case ExprKind::kNot: {
      const auto& n = static_cast<const NotExpr&>(expr);
      HYPRE_ASSIGN_OR_RETURN(bool v, Evaluate(*n.child(), row));
      return !v;
    }
    case ExprKind::kColumnRef:
    case ExprKind::kLiteral:
      return Status::InvalidArgument("expression is not a predicate: " +
                                     expr.ToString());
  }
  return Status::Internal("unreachable expression kind");
}

void CollectConjuncts(const ExprPtr& expr, std::vector<ExprPtr>* out) {
  if (expr->kind() == ExprKind::kAnd) {
    const auto& nary = static_cast<const NaryExpr&>(*expr);
    for (const auto& child : nary.children()) CollectConjuncts(child, out);
  } else {
    out->push_back(expr);
  }
}

bool ExprEquals(const Expr& a, const Expr& b) {
  if (a.kind() != b.kind()) return false;
  switch (a.kind()) {
    case ExprKind::kColumnRef: {
      const auto& ca = static_cast<const ColumnRefExpr&>(a);
      const auto& cb = static_cast<const ColumnRefExpr&>(b);
      return ca.table() == cb.table() && ca.column() == cb.column();
    }
    case ExprKind::kLiteral: {
      const auto& la = static_cast<const LiteralExpr&>(a);
      const auto& lb = static_cast<const LiteralExpr&>(b);
      if (la.value().is_null() && lb.value().is_null()) return true;
      if (la.value().is_null() || lb.value().is_null()) return false;
      return la.value().Compare(lb.value()) == 0;
    }
    case ExprKind::kCompare: {
      const auto& ca = static_cast<const CompareExpr&>(a);
      const auto& cb = static_cast<const CompareExpr&>(b);
      return ca.op() == cb.op() && ExprEquals(*ca.lhs(), *cb.lhs()) &&
             ExprEquals(*ca.rhs(), *cb.rhs());
    }
    case ExprKind::kBetween: {
      const auto& ba = static_cast<const BetweenExpr&>(a);
      const auto& bb = static_cast<const BetweenExpr&>(b);
      return ExprEquals(*ba.column(), *bb.column()) &&
             ba.lo().Compare(bb.lo()) == 0 && ba.hi().Compare(bb.hi()) == 0;
    }
    case ExprKind::kInList: {
      const auto& ia = static_cast<const InListExpr&>(a);
      const auto& ib = static_cast<const InListExpr&>(b);
      if (!ExprEquals(*ia.column(), *ib.column())) return false;
      if (ia.values().size() != ib.values().size()) return false;
      for (size_t i = 0; i < ia.values().size(); ++i) {
        if (ia.values()[i].Compare(ib.values()[i]) != 0) return false;
      }
      return true;
    }
    case ExprKind::kAnd:
    case ExprKind::kOr: {
      const auto& na = static_cast<const NaryExpr&>(a);
      const auto& nb = static_cast<const NaryExpr&>(b);
      if (na.children().size() != nb.children().size()) return false;
      for (size_t i = 0; i < na.children().size(); ++i) {
        if (!ExprEquals(*na.children()[i], *nb.children()[i])) return false;
      }
      return true;
    }
    case ExprKind::kNot: {
      const auto& na = static_cast<const NotExpr&>(a);
      const auto& nb = static_cast<const NotExpr&>(b);
      return ExprEquals(*na.child(), *nb.child());
    }
  }
  return false;
}

}  // namespace reldb
}  // namespace hypre
