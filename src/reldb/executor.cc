#include "reldb/executor.h"

#include <algorithm>
#include <functional>
#include <unordered_map>
#include <unordered_set>

#include "common/string_util.h"

namespace hypre {
namespace reldb {

std::pair<std::string, std::string> SplitQualifiedName(
    const std::string& name) {
  size_t dot = name.find('.');
  if (dot == std::string::npos) return {"", name};
  return {name.substr(0, dot), name.substr(dot + 1)};
}

uint32_t DenseDictionary::Intern(const Value& v) {
  auto [it, inserted] =
      ids_.emplace(v, static_cast<uint32_t>(values_.size()));
  if (inserted) values_.push_back(v);
  return it->second;
}

uint32_t DenseDictionary::Lookup(const Value& v) const {
  auto it = ids_.find(v);
  return it == ids_.end() ? kNotFound : it->second;
}

void DenseDictionary::Forget(const Value& v) { ids_.erase(v); }

void DenseDictionary::Reassign(uint32_t id, const Value& v) {
  values_[id] = v;
  ids_[v] = id;
}

uint32_t DenseDictionary::Restore(const Value& v, bool live) {
  uint32_t id = static_cast<uint32_t>(values_.size());
  values_.push_back(v);
  if (live) ids_[v] = id;
  return id;
}

std::string Query::ToSql() const {
  std::string sql = "SELECT ";
  if (select.empty()) {
    sql += "*";
  } else {
    for (size_t i = 0; i < select.size(); ++i) {
      if (i > 0) sql += ", ";
      sql += select[i];
    }
  }
  sql += " FROM " + from;
  for (const auto& join : joins) {
    sql += " JOIN " + join.right_table + " ON " + join.left_column + " = " +
           join.right_table + "." + join.right_column;
  }
  if (where) sql += " WHERE " + where->ToString();
  if (!order_by.empty()) {
    sql += " ORDER BY " + order_by + (order_desc ? " DESC" : " ASC");
  }
  if (limit > 0) sql += StringFormat(" LIMIT %zu", limit);
  return sql;
}

namespace {

struct Slot {
  const Table* table;
  std::string name;
};

/// Resolves a (table, column) reference against the in-scope slots.
Result<std::pair<size_t, size_t>> ResolveRef(const std::vector<Slot>& slots,
                                             const std::string& table,
                                             const std::string& column) {
  if (!table.empty()) {
    for (size_t s = 0; s < slots.size(); ++s) {
      if (slots[s].name == table) {
        int col = slots[s].table->schema().FindColumn(column);
        if (col < 0) {
          return Status::NotFound("no column '" + column + "' in table '" +
                                  table + "'");
        }
        return std::make_pair(s, static_cast<size_t>(col));
      }
    }
    return Status::NotFound("table '" + table + "' is not in the query");
  }
  // Unqualified: must resolve to a unique slot.
  int found_slot = -1;
  int found_col = -1;
  for (size_t s = 0; s < slots.size(); ++s) {
    int col = slots[s].table->schema().FindColumn(column);
    if (col >= 0) {
      if (found_slot >= 0) {
        return Status::InvalidArgument("ambiguous column '" + column + "'");
      }
      found_slot = static_cast<int>(s);
      found_col = col;
    }
  }
  if (found_slot < 0) {
    return Status::NotFound("no column named '" + column + "' in scope");
  }
  return std::make_pair(static_cast<size_t>(found_slot),
                        static_cast<size_t>(found_col));
}

Result<std::pair<size_t, size_t>> ResolveQualified(
    const std::vector<Slot>& slots, const std::string& qualified) {
  auto [table, column] = SplitQualifiedName(qualified);
  return ResolveRef(slots, table, column);
}

/// Row accessor over one tuple of the (joined) slot row ids.
class JoinedRowAccessor : public RowAccessor {
 public:
  JoinedRowAccessor(const std::vector<Slot>* slots,
                    const std::vector<RowId>* rows)
      : slots_(slots), rows_(rows) {}

  Result<Value> Get(const std::string& table,
                    const std::string& column) const override {
    HYPRE_ASSIGN_OR_RETURN(auto loc, ResolveRef(*slots_, table, column));
    return (*slots_)[loc.first].table->row((*rows_)[loc.first])[loc.second];
  }

 private:
  const std::vector<Slot>* slots_;
  const std::vector<RowId>* rows_;
};

/// Row accessor over a single base-table row (push-down evaluation).
class SingleRowAccessor : public RowAccessor {
 public:
  SingleRowAccessor(const Slot* slot, RowId row) : slot_(slot), row_(row) {}

  Result<Value> Get(const std::string& table,
                    const std::string& column) const override {
    if (!table.empty() && table != slot_->name) {
      return Status::NotFound("table '" + table + "' not in scope");
    }
    int col = slot_->table->schema().FindColumn(column);
    if (col < 0) {
      return Status::NotFound("no column '" + column + "' in table '" +
                              slot_->name + "'");
    }
    return slot_->table->row(row_)[static_cast<size_t>(col)];
  }

  void set_row(RowId row) { row_ = row; }

 private:
  const Slot* slot_;
  RowId row_;
};

void VisitColumnRefs(const Expr& expr,
                     const std::function<void(const ColumnRefExpr&)>& fn) {
  switch (expr.kind()) {
    case ExprKind::kColumnRef:
      fn(static_cast<const ColumnRefExpr&>(expr));
      return;
    case ExprKind::kLiteral:
      return;
    case ExprKind::kCompare: {
      const auto& c = static_cast<const CompareExpr&>(expr);
      VisitColumnRefs(*c.lhs(), fn);
      VisitColumnRefs(*c.rhs(), fn);
      return;
    }
    case ExprKind::kBetween:
      VisitColumnRefs(*static_cast<const BetweenExpr&>(expr).column(), fn);
      return;
    case ExprKind::kInList:
      VisitColumnRefs(*static_cast<const InListExpr&>(expr).column(), fn);
      return;
    case ExprKind::kAnd:
    case ExprKind::kOr:
      for (const auto& child : static_cast<const NaryExpr&>(expr).children()) {
        VisitColumnRefs(*child, fn);
      }
      return;
    case ExprKind::kNot:
      VisitColumnRefs(*static_cast<const NotExpr&>(expr).child(), fn);
      return;
  }
}

/// Returns the slot index if every column reference in `expr` resolves to the
/// same slot; -1 if references span slots. Errors on unresolvable columns.
Result<int> ClassifyConjunct(const std::vector<Slot>& slots,
                             const Expr& expr) {
  int slot = -2;  // -2 = no refs yet
  Status error = Status::OK();
  VisitColumnRefs(expr, [&](const ColumnRefExpr& ref) {
    if (!error.ok()) return;
    auto loc = ResolveRef(slots, ref.table(), ref.column());
    if (!loc.ok()) {
      error = loc.status();
      return;
    }
    int s = static_cast<int>(loc->first);
    if (slot == -2) {
      slot = s;
    } else if (slot != s) {
      slot = -1;
    }
  });
  HYPRE_RETURN_NOT_OK(error);
  if (slot == -2) slot = 0;  // constant predicate: evaluate anywhere
  return slot;
}

/// If `expr` is index-usable on `slot`'s table, returns the candidate row
/// ids; otherwise std::nullopt. Recognizes:
///  - col = literal          (hash index)
///  - col IN (...)           (hash index)
///  - OR of the above on the same column (hash index)
///  - col BETWEEN lo AND hi  (ordered index)
///  - col </<=/>/>= literal  (ordered index)
std::optional<std::vector<RowId>> TryIndexCandidates(const Slot& slot,
                                                     const Expr& expr) {
  const Table& table = *slot.table;

  auto column_name_of = [&](const Expr& e) -> std::optional<std::string> {
    if (e.kind() != ExprKind::kColumnRef) return std::nullopt;
    const auto& ref = static_cast<const ColumnRefExpr&>(e);
    if (!ref.table().empty() && ref.table() != slot.name) return std::nullopt;
    if (table.schema().FindColumn(ref.column()) < 0) return std::nullopt;
    return ref.column();
  };
  auto literal_of = [](const Expr& e) -> std::optional<Value> {
    if (e.kind() != ExprKind::kLiteral) return std::nullopt;
    return static_cast<const LiteralExpr&>(e).value();
  };

  switch (expr.kind()) {
    case ExprKind::kCompare: {
      const auto& cmp = static_cast<const CompareExpr&>(expr);
      auto col = column_name_of(*cmp.lhs());
      auto lit = literal_of(*cmp.rhs());
      CompareOp op = cmp.op();
      if (!col || !lit) {
        // Try the mirrored form `literal op col`.
        col = column_name_of(*cmp.rhs());
        lit = literal_of(*cmp.lhs());
        if (!col || !lit) return std::nullopt;
        switch (op) {
          case CompareOp::kLt:
            op = CompareOp::kGt;
            break;
          case CompareOp::kLe:
            op = CompareOp::kGe;
            break;
          case CompareOp::kGt:
            op = CompareOp::kLt;
            break;
          case CompareOp::kGe:
            op = CompareOp::kLe;
            break;
          default:
            break;
        }
      }
      if (op == CompareOp::kEq) {
        const HashIndex* idx = table.GetHashIndex(*col);
        if (idx == nullptr) return std::nullopt;
        return idx->Lookup(*lit);
      }
      if (op == CompareOp::kLt || op == CompareOp::kLe) {
        const OrderedIndex* idx = table.GetOrderedIndex(*col);
        if (idx == nullptr) return std::nullopt;
        return idx->Range(Value::Null(), true, *lit, op == CompareOp::kLe);
      }
      if (op == CompareOp::kGt || op == CompareOp::kGe) {
        const OrderedIndex* idx = table.GetOrderedIndex(*col);
        if (idx == nullptr) return std::nullopt;
        return idx->Range(*lit, op == CompareOp::kGe, Value::Null(), true);
      }
      return std::nullopt;
    }
    case ExprKind::kBetween: {
      const auto& bt = static_cast<const BetweenExpr&>(expr);
      auto col = column_name_of(*bt.column());
      if (!col) return std::nullopt;
      const OrderedIndex* idx = table.GetOrderedIndex(*col);
      if (idx == nullptr) return std::nullopt;
      return idx->Range(bt.lo(), true, bt.hi(), true);
    }
    case ExprKind::kInList: {
      const auto& in = static_cast<const InListExpr&>(expr);
      auto col = column_name_of(*in.column());
      if (!col) return std::nullopt;
      const HashIndex* idx = table.GetHashIndex(*col);
      if (idx == nullptr) return std::nullopt;
      std::vector<RowId> out;
      for (const auto& v : in.values()) {
        const auto& rows = idx->Lookup(v);
        out.insert(out.end(), rows.begin(), rows.end());
      }
      std::sort(out.begin(), out.end());
      out.erase(std::unique(out.begin(), out.end()), out.end());
      return out;
    }
    case ExprKind::kOr: {
      // Union of index-usable disjuncts; all must be usable.
      const auto& nary = static_cast<const NaryExpr&>(expr);
      std::vector<RowId> out;
      for (const auto& child : nary.children()) {
        auto sub = TryIndexCandidates(slot, *child);
        if (!sub) return std::nullopt;
        out.insert(out.end(), sub->begin(), sub->end());
      }
      std::sort(out.begin(), out.end());
      out.erase(std::unique(out.begin(), out.end()), out.end());
      return out;
    }
    default:
      return std::nullopt;
  }
}

struct PlannedQuery {
  std::vector<Slot> slots;
  // Conjuncts that reference exactly one slot, grouped by slot.
  std::vector<std::vector<ExprPtr>> slot_conjuncts;
  // Conjuncts that span slots; evaluated after the joins.
  std::vector<ExprPtr> residual;
};

/// Per-slot candidate restrictions for the delta-maintenance passes. The
/// default restriction is "all live rows" — tombstoned rows are always
/// skipped unless explicitly made visible.
struct ScanRestriction {
  // Restrict this slot to exactly pinned_row (visible even if tombstoned).
  int pinned_slot = -1;
  RowId pinned_row = 0;
  // Restrict this slot to row ids >= min_row (the append watermark).
  int min_slot = -1;
  RowId min_row = 0;
  // Tombstoned rows to treat as visible, keyed by table name (pre-delete
  // state reconstruction).
  const std::unordered_map<std::string, std::vector<RowId>>* extra_visible =
      nullptr;
};

/// True if `id` of `slot` may appear in a scan under `restriction`.
bool RowVisible(const Slot& slot, size_t slot_idx, RowId id,
                const ScanRestriction* restriction) {
  if (!slot.table->is_deleted(id)) return true;
  if (restriction == nullptr) return false;
  if (restriction->pinned_slot == static_cast<int>(slot_idx) &&
      restriction->pinned_row == id) {
    return true;
  }
  if (restriction->extra_visible != nullptr) {
    auto it = restriction->extra_visible->find(slot.name);
    if (it != restriction->extra_visible->end()) {
      for (RowId visible : it->second) {
        if (visible == id) return true;
      }
    }
  }
  return false;
}

Result<PlannedQuery> Plan(const Database& db, const Query& query) {
  PlannedQuery plan;
  HYPRE_ASSIGN_OR_RETURN(const Table* from_table,
                         db.ResolveTable(query.from));
  plan.slots.push_back({from_table, query.from});
  for (const auto& join : query.joins) {
    HYPRE_ASSIGN_OR_RETURN(const Table* right,
                           db.ResolveTable(join.right_table));
    for (const auto& slot : plan.slots) {
      if (slot.name == join.right_table) {
        return Status::NotImplemented(
            "self-joins (duplicate table in FROM) are not supported");
      }
    }
    plan.slots.push_back({right, join.right_table});
  }
  plan.slot_conjuncts.resize(plan.slots.size());
  if (query.where) {
    std::vector<ExprPtr> conjuncts;
    CollectConjuncts(query.where, &conjuncts);
    for (const auto& conjunct : conjuncts) {
      HYPRE_ASSIGN_OR_RETURN(int slot,
                             ClassifyConjunct(plan.slots, *conjunct));
      if (slot >= 0) {
        plan.slot_conjuncts[static_cast<size_t>(slot)].push_back(conjunct);
      } else {
        plan.residual.push_back(conjunct);
      }
    }
  }
  return plan;
}

/// Computes the filtered candidate row ids for one slot: index probe from the
/// first index-usable conjunct (or the restriction's pin), then residual
/// per-row evaluation of all of the slot's conjuncts. Tombstoned rows are
/// skipped unless the restriction pins or explicitly exposes them.
Result<std::vector<RowId>> SlotCandidates(const Slot& slot,
                                          const std::vector<ExprPtr>& conj,
                                          size_t slot_idx,
                                          const ScanRestriction* restriction) {
  bool pinned = restriction != nullptr &&
                restriction->pinned_slot == static_cast<int>(slot_idx);
  RowId min_row = 0;
  if (restriction != nullptr &&
      restriction->min_slot == static_cast<int>(slot_idx)) {
    min_row = restriction->min_row;
  }
  std::vector<RowId> candidates;
  bool have_candidates = false;
  if (pinned) {
    if (restriction->pinned_row < slot.table->num_rows()) {
      candidates.push_back(restriction->pinned_row);
    }
    have_candidates = true;
  }
  if (!have_candidates) {
    for (const auto& c : conj) {
      auto idx_rows = TryIndexCandidates(slot, *c);
      if (idx_rows) {
        candidates = std::move(*idx_rows);
        have_candidates = true;
        // Tombstoned rows are unindexed; add back the ones the restriction
        // makes visible. Every conjunct is re-evaluated below, so additions
        // that fail the indexed predicate are filtered out again.
        if (restriction != nullptr && restriction->extra_visible != nullptr) {
          auto it = restriction->extra_visible->find(slot.name);
          if (it != restriction->extra_visible->end()) {
            for (RowId id : it->second) {
              if (id < slot.table->num_rows()) candidates.push_back(id);
            }
          }
        }
        break;
      }
    }
  }
  if (!have_candidates) {
    size_t num_rows = slot.table->num_rows();
    candidates.reserve(num_rows - std::min<size_t>(min_row, num_rows));
    for (RowId i = min_row; i < num_rows; ++i) candidates.push_back(i);
  }
  std::vector<RowId> out;
  out.reserve(candidates.size());
  SingleRowAccessor accessor(&slot, 0);
  for (RowId id : candidates) {
    if (id < min_row) continue;
    if (!RowVisible(slot, slot_idx, id, restriction)) continue;
    accessor.set_row(id);
    bool keep = true;
    for (const auto& c : conj) {
      HYPRE_ASSIGN_OR_RETURN(bool v, Evaluate(*c, accessor));
      if (!v) {
        keep = false;
        break;
      }
    }
    if (keep) out.push_back(id);
  }
  return out;
}

/// Streams every matching joined tuple to `fn(slots, row_ids)`.
Status ForEachMatch(
    const Database& db, const Query& query,
    const std::function<void(const std::vector<Slot>&,
                             const std::vector<RowId>&)>& fn,
    const ScanRestriction* restriction = nullptr) {
  HYPRE_ASSIGN_OR_RETURN(PlannedQuery plan, Plan(db, query));

  // A right slot with a hash index on its join column — and no conjuncts or
  // scan restriction of its own — joins by probing that index directly:
  // no candidate materialization, no per-query hash-table build. This is
  // what keeps key-pinned delta recomputes proportional to the key's own
  // rows instead of the joined table's size. (Tombstoned rows are erased
  // from indexes, so the index probe and the hash build agree; an
  // extra_visible override disables the shortcut because those rows are
  // only reachable by scan.)
  std::vector<const HashIndex*> join_index(plan.slots.size(), nullptr);
  for (size_t j = 0; j < query.joins.size(); ++j) {
    size_t s = j + 1;
    if (!plan.slot_conjuncts[s].empty()) continue;
    if (restriction != nullptr) {
      if (restriction->pinned_slot == static_cast<int>(s) ||
          restriction->min_slot == static_cast<int>(s)) {
        continue;
      }
      if (restriction->extra_visible != nullptr &&
          restriction->extra_visible->count(plan.slots[s].name) > 0) {
        continue;
      }
    }
    join_index[s] =
        plan.slots[s].table->GetHashIndex(query.joins[j].right_column);
  }

  // Filtered candidates for every slot (skipped where the index joins).
  std::vector<std::vector<RowId>> candidates(plan.slots.size());
  for (size_t s = 0; s < plan.slots.size(); ++s) {
    if (s > 0 && join_index[s] != nullptr) continue;
    HYPRE_ASSIGN_OR_RETURN(
        candidates[s],
        SlotCandidates(plan.slots[s], plan.slot_conjuncts[s], s, restriction));
  }

  // Left-deep hash joins.
  std::vector<std::vector<RowId>> tuples;
  tuples.reserve(candidates[0].size());
  for (RowId id : candidates[0]) tuples.push_back({id});

  for (size_t j = 0; j < query.joins.size(); ++j) {
    const JoinSpec& join = query.joins[j];
    size_t right_slot = j + 1;
    const Slot& right = plan.slots[right_slot];

    // Resolve join columns.
    std::vector<Slot> left_scope(plan.slots.begin(),
                                 plan.slots.begin() + right_slot);
    HYPRE_ASSIGN_OR_RETURN(auto left_loc,
                           ResolveQualified(left_scope, join.left_column));
    int right_col = right.table->schema().FindColumn(join.right_column);
    if (right_col < 0) {
      return Status::NotFound("no column '" + join.right_column +
                              "' in table '" + right.name + "'");
    }

    std::vector<std::vector<RowId>> next;
    if (join_index[right_slot] != nullptr) {
      // Index-backed join: probe the table's own hash index per left tuple.
      // Posting lists are ascending row ids, the same per-key order the
      // built hash table would hold, so emission order is unchanged.
      const HashIndex* idx = join_index[right_slot];
      for (const auto& tuple : tuples) {
        const Value& key =
            plan.slots[left_loc.first]
                .table->row(tuple[left_loc.first])[left_loc.second];
        if (key.is_null()) continue;
        for (RowId rid : idx->Lookup(key)) {
          std::vector<RowId> extended = tuple;
          extended.push_back(rid);
          next.push_back(std::move(extended));
        }
      }
    } else {
      // Build hash table on the right candidates.
      std::unordered_map<Value, std::vector<RowId>, ValueHash> hash;
      hash.reserve(candidates[right_slot].size());
      for (RowId id : candidates[right_slot]) {
        const Value& key =
            right.table->row(id)[static_cast<size_t>(right_col)];
        if (key.is_null()) continue;
        hash[key].push_back(id);
      }

      // Probe with the accumulated tuples.
      for (const auto& tuple : tuples) {
        const Value& key =
            plan.slots[left_loc.first]
                .table->row(tuple[left_loc.first])[left_loc.second];
        if (key.is_null()) continue;
        auto it = hash.find(key);
        if (it == hash.end()) continue;
        for (RowId rid : it->second) {
          std::vector<RowId> extended = tuple;
          extended.push_back(rid);
          next.push_back(std::move(extended));
        }
      }
    }
    tuples = std::move(next);
  }

  // Residual cross-slot predicate.
  for (const auto& tuple : tuples) {
    JoinedRowAccessor accessor(&plan.slots, &tuple);
    bool keep = true;
    for (const auto& c : plan.residual) {
      HYPRE_ASSIGN_OR_RETURN(bool v, Evaluate(*c, accessor));
      if (!v) {
        keep = false;
        break;
      }
    }
    if (keep) fn(plan.slots, tuple);
  }
  return Status::OK();
}

}  // namespace

Result<ResultSet> Executor::Execute(const Query& query) const {
  // Resolve projection columns once against the slots.
  HYPRE_ASSIGN_OR_RETURN(PlannedQuery plan, Plan(*db_, query));
  std::vector<std::pair<size_t, size_t>> projection;
  ResultSet result;
  if (query.select.empty()) {
    for (size_t s = 0; s < plan.slots.size(); ++s) {
      const Schema& schema = plan.slots[s].table->schema();
      for (size_t c = 0; c < schema.num_columns(); ++c) {
        projection.emplace_back(s, c);
        result.column_names.push_back(plan.slots[s].name + "." +
                                      schema.column(c).name);
      }
    }
  } else {
    for (const auto& name : query.select) {
      HYPRE_ASSIGN_OR_RETURN(auto loc, ResolveQualified(plan.slots, name));
      projection.push_back(loc);
      result.column_names.push_back(name);
    }
  }

  // Materialize matching tuples (slot row ids) plus an optional sort key.
  bool sorted = !query.order_by.empty();
  std::pair<size_t, size_t> order_loc{0, 0};
  if (sorted) {
    HYPRE_ASSIGN_OR_RETURN(order_loc,
                           ResolveQualified(plan.slots, query.order_by));
  }
  struct Match {
    std::vector<RowId> tuple;
    Value key;
  };
  std::vector<Match> matches;
  HYPRE_RETURN_NOT_OK(ForEachMatch(
      *db_, query,
      [&](const std::vector<Slot>& slots, const std::vector<RowId>& tuple) {
        Match m;
        m.tuple = tuple;
        if (sorted) {
          m.key = slots[order_loc.first]
                      .table->row(tuple[order_loc.first])[order_loc.second];
        }
        matches.push_back(std::move(m));
      }));

  if (sorted) {
    std::stable_sort(matches.begin(), matches.end(),
                     [&](const Match& a, const Match& b) {
                       int c = a.key.Compare(b.key);
                       return query.order_desc ? c > 0 : c < 0;
                     });
  }
  size_t n = matches.size();
  if (query.limit > 0 && query.limit < n) n = query.limit;

  result.rows.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Row out;
    out.reserve(projection.size());
    for (const auto& [s, c] : projection) {
      out.push_back(plan.slots[s].table->row(matches[i].tuple[s])[c]);
    }
    result.rows.push_back(std::move(out));
  }
  return result;
}

Result<size_t> Executor::CountDistinct(const Query& query,
                                       const std::string& column) const {
  HYPRE_ASSIGN_OR_RETURN(std::vector<Value> values,
                         DistinctValues(query, column));
  return values.size();
}

Result<std::vector<Value>> Executor::DistinctValues(
    const Query& query, const std::string& column) const {
  HYPRE_ASSIGN_OR_RETURN(PlannedQuery plan, Plan(*db_, query));
  HYPRE_ASSIGN_OR_RETURN(auto loc, ResolveQualified(plan.slots, column));
  std::vector<Value> out;
  std::unordered_set<Value, ValueHash> seen;
  HYPRE_RETURN_NOT_OK(ForEachMatch(
      *db_, query,
      [&](const std::vector<Slot>& slots, const std::vector<RowId>& tuple) {
        const Value& v =
            slots[loc.first].table->row(tuple[loc.first])[loc.second];
        if (seen.insert(v).second) out.push_back(v);
      }));
  return out;
}

Status Executor::InternDistinctValues(const Query& query,
                                      const std::string& column,
                                      DenseDictionary* dict) const {
  HYPRE_ASSIGN_OR_RETURN(PlannedQuery plan, Plan(*db_, query));
  HYPRE_ASSIGN_OR_RETURN(auto loc, ResolveQualified(plan.slots, column));
  return ForEachMatch(
      *db_, query,
      [&](const std::vector<Slot>& slots, const std::vector<RowId>& tuple) {
        dict->Intern(slots[loc.first].table->row(tuple[loc.first])[loc.second]);
      });
}

Status Executor::ForEachDenseId(const Query& query, const std::string& column,
                                const DenseDictionary& dict,
                                const std::function<void(uint32_t)>& fn) const {
  HYPRE_ASSIGN_OR_RETURN(PlannedQuery plan, Plan(*db_, query));
  HYPRE_ASSIGN_OR_RETURN(auto loc, ResolveQualified(plan.slots, column));
  return ForEachMatch(
      *db_, query,
      [&](const std::vector<Slot>& slots, const std::vector<RowId>& tuple) {
        uint32_t id = dict.Lookup(
            slots[loc.first].table->row(tuple[loc.first])[loc.second]);
        if (id != DenseDictionary::kNotFound) fn(id);
      });
}

Status Executor::ForEachDenseIdMulti(
    const Query& query, const std::string& column, const DenseDictionary& dict,
    const std::vector<ExprPtr>& predicates,
    const std::function<void(size_t, uint32_t)>& fn) const {
  HYPRE_ASSIGN_OR_RETURN(PlannedQuery plan, Plan(*db_, query));
  HYPRE_ASSIGN_OR_RETURN(auto loc, ResolveQualified(plan.slots, column));
  Status failure = Status::OK();
  HYPRE_RETURN_NOT_OK(ForEachMatch(
      *db_, query,
      [&](const std::vector<Slot>& slots, const std::vector<RowId>& tuple) {
        if (!failure.ok()) return;
        uint32_t id = dict.Lookup(
            slots[loc.first].table->row(tuple[loc.first])[loc.second]);
        if (id == DenseDictionary::kNotFound) return;
        JoinedRowAccessor accessor(&slots, &tuple);
        for (size_t p = 0; p < predicates.size(); ++p) {
          auto held = Evaluate(*predicates[p], accessor);
          if (!held.ok()) {
            failure = held.status();
            return;
          }
          if (*held) fn(p, id);
        }
      }));
  return failure;
}

namespace {

/// Shared driver for the delta entry points: streams the key value of every
/// matching tuple under `restriction` and evaluates `predicates` per tuple.
Status KeyedMatchImpl(const Database& db, const Query& query,
                      const std::string& column,
                      const std::vector<ExprPtr>& predicates,
                      const std::function<void(const Value&)>& tuple_fn,
                      const std::function<void(size_t, const Value&)>& pred_fn,
                      const ScanRestriction* restriction) {
  HYPRE_ASSIGN_OR_RETURN(PlannedQuery plan, Plan(db, query));
  HYPRE_ASSIGN_OR_RETURN(auto loc, ResolveQualified(plan.slots, column));
  Status failure = Status::OK();
  HYPRE_RETURN_NOT_OK(ForEachMatch(
      db, query,
      [&](const std::vector<Slot>& slots, const std::vector<RowId>& tuple) {
        if (!failure.ok()) return;
        const Value& key =
            slots[loc.first].table->row(tuple[loc.first])[loc.second];
        tuple_fn(key);
        if (predicates.empty()) return;
        JoinedRowAccessor accessor(&slots, &tuple);
        for (size_t p = 0; p < predicates.size(); ++p) {
          auto held = Evaluate(*predicates[p], accessor);
          if (!held.ok()) {
            failure = held.status();
            return;
          }
          if (*held) pred_fn(p, key);
        }
      },
      restriction));
  return failure;
}

/// Slot-ordered table names of a query: FROM, then each JOIN's right table.
std::vector<std::string> SlotTableNames(const Query& query) {
  std::vector<std::string> names;
  names.reserve(query.joins.size() + 1);
  names.push_back(query.from);
  for (const auto& join : query.joins) names.push_back(join.right_table);
  return names;
}

}  // namespace

Status Executor::ForEachKeyedMatch(
    const Query& query, const std::string& column,
    const std::vector<ExprPtr>& predicates,
    const std::function<void(const Value&)>& tuple_fn,
    const std::function<void(size_t, const Value&)>& pred_fn) const {
  return KeyedMatchImpl(*db_, query, column, predicates, tuple_fn, pred_fn,
                        nullptr);
}

Status Executor::ForEachAppendedMatch(
    const Query& query, const std::string& column,
    const std::unordered_map<std::string, RowId>& first_new_row,
    const std::vector<ExprPtr>& predicates,
    const std::function<void(const Value&)>& tuple_fn,
    const std::function<void(size_t, const Value&)>& pred_fn) const {
  // One pass per watermarked slot: pass s sees exactly the joined tuples
  // whose slot-s row is new. The union over passes covers every tuple that
  // did not exist at the watermarks (any other tuple is all-old rows).
  std::vector<std::string> slot_names = SlotTableNames(query);
  for (size_t s = 0; s < slot_names.size(); ++s) {
    auto it = first_new_row.find(slot_names[s]);
    if (it == first_new_row.end()) continue;
    const Table* table = db_->GetTable(slot_names[s]);
    if (table != nullptr && it->second >= table->num_rows()) continue;
    // Left-deep joins enumerate the FROM slot, so a watermark on the joined
    // slot of a two-table query would still scan the whole FROM table. Flip
    // the query instead: the handful of new joined rows drive, and the FROM
    // side is reached through its join-column index (or one hash build).
    // Tuple emission order differs from the straight pass, which is fine —
    // consumers of this API are declared order-independent.
    if (s == 1 && query.joins.size() == 1) {
      const JoinSpec& join = query.joins[0];
      auto [left_table, left_col] = SplitQualifiedName(join.left_column);
      if (left_table.empty()) left_table = query.from;
      if (left_table == query.from) {
        Query inverted;
        inverted.from = join.right_table;
        inverted.joins.push_back(
            {query.from, join.right_table + "." + join.right_column,
             left_col});
        inverted.where = query.where;
        ScanRestriction restriction;
        restriction.min_slot = 0;
        restriction.min_row = it->second;
        HYPRE_RETURN_NOT_OK(KeyedMatchImpl(*db_, inverted, column, predicates,
                                           tuple_fn, pred_fn, &restriction));
        continue;
      }
    }
    ScanRestriction restriction;
    restriction.min_slot = static_cast<int>(s);
    restriction.min_row = it->second;
    HYPRE_RETURN_NOT_OK(KeyedMatchImpl(*db_, query, column, predicates,
                                       tuple_fn, pred_fn, &restriction));
  }
  return Status::OK();
}

Status Executor::ForEachMatchOfRow(
    const Query& query, const std::string& column, const std::string& table,
    RowId row,
    const std::unordered_map<std::string, std::vector<RowId>>& extra_visible,
    const std::function<void(const Value&)>& fn) const {
  std::vector<std::string> slot_names = SlotTableNames(query);
  int slot = -1;
  for (size_t s = 0; s < slot_names.size(); ++s) {
    if (slot_names[s] == table) {
      slot = static_cast<int>(s);
      break;
    }
  }
  if (slot < 0) {
    return Status::InvalidArgument("table '" + table +
                                   "' is not part of the query");
  }
  ScanRestriction restriction;
  restriction.pinned_slot = slot;
  restriction.pinned_row = row;
  restriction.extra_visible = &extra_visible;
  std::vector<ExprPtr> no_predicates;
  return KeyedMatchImpl(
      *db_, query, column, no_predicates, fn,
      [](size_t, const Value&) {}, &restriction);
}

namespace {

/// Accumulator for one aggregate over one group.
struct AggregateState {
  size_t count = 0;
  double sum = 0.0;
  bool any_numeric = false;
  Value min;
  Value max;
  std::unordered_set<Value, ValueHash> distinct;
};

}  // namespace

Result<ResultSet> Executor::ExecuteGroupBy(const GroupByQuery& query) const {
  if (query.aggregates.empty()) {
    return Status::InvalidArgument("GROUP BY query needs >= 1 aggregate");
  }
  HYPRE_ASSIGN_OR_RETURN(PlannedQuery plan, Plan(*db_, query.base));
  std::vector<std::pair<size_t, size_t>> group_locs;
  for (const auto& name : query.group_by) {
    HYPRE_ASSIGN_OR_RETURN(auto loc, ResolveQualified(plan.slots, name));
    group_locs.push_back(loc);
  }
  std::vector<std::pair<size_t, size_t>> agg_locs;
  for (const auto& agg : query.aggregates) {
    if (agg.func == AggregateFunc::kCount) {
      agg_locs.emplace_back(0, 0);  // unused
      continue;
    }
    HYPRE_ASSIGN_OR_RETURN(auto loc,
                           ResolveQualified(plan.slots, agg.column));
    agg_locs.push_back(loc);
  }

  // Group key -> per-aggregate state. Keys are materialized value rows; the
  // map is ordered via a sorted post-pass for deterministic output.
  struct Group {
    Row key;
    std::vector<AggregateState> aggs;
  };
  std::unordered_map<std::string, Group> groups;

  Status failure = Status::OK();
  HYPRE_RETURN_NOT_OK(ForEachMatch(
      *db_, query.base,
      [&](const std::vector<Slot>& slots, const std::vector<RowId>& tuple) {
        if (!failure.ok()) return;
        Row key;
        std::string key_text;
        for (const auto& [s, c] : group_locs) {
          const Value& v = slots[s].table->row(tuple[s])[c];
          key.push_back(v);
          key_text += v.ToString();
          key_text.push_back('\x1f');
        }
        auto [it, inserted] = groups.try_emplace(std::move(key_text));
        Group& group = it->second;
        if (inserted) {
          group.key = std::move(key);
          group.aggs.resize(query.aggregates.size());
        }
        for (size_t a = 0; a < query.aggregates.size(); ++a) {
          AggregateState& state = group.aggs[a];
          if (query.aggregates[a].func == AggregateFunc::kCount) {
            ++state.count;
            continue;
          }
          const auto& [s, c] = agg_locs[a];
          const Value& v = slots[s].table->row(tuple[s])[c];
          if (v.is_null()) continue;  // NULLs are skipped
          switch (query.aggregates[a].func) {
            case AggregateFunc::kCountDistinct:
              state.distinct.insert(v);
              break;
            case AggregateFunc::kSum:
            case AggregateFunc::kAvg:
              if (!v.is_numeric()) {
                failure = Status::InvalidArgument(
                    "SUM/AVG over non-numeric column '" +
                    query.aggregates[a].column + "'");
                return;
              }
              state.sum += v.NumericValue();
              ++state.count;
              state.any_numeric = true;
              break;
            case AggregateFunc::kMin:
              if (state.count == 0 || v.Compare(state.min) < 0) {
                state.min = v;
              }
              ++state.count;
              break;
            case AggregateFunc::kMax:
              if (state.count == 0 || v.Compare(state.max) > 0) {
                state.max = v;
              }
              ++state.count;
              break;
            case AggregateFunc::kCount:
              break;  // handled above
          }
        }
      }));
  HYPRE_RETURN_NOT_OK(failure);

  ResultSet result;
  for (const auto& name : query.group_by) {
    result.column_names.push_back(name);
  }
  for (const auto& agg : query.aggregates) {
    const char* fn = "count";
    switch (agg.func) {
      case AggregateFunc::kCount:
        fn = "count(*)";
        break;
      case AggregateFunc::kCountDistinct:
        fn = "count(distinct)";
        break;
      case AggregateFunc::kSum:
        fn = "sum";
        break;
      case AggregateFunc::kAvg:
        fn = "avg";
        break;
      case AggregateFunc::kMin:
        fn = "min";
        break;
      case AggregateFunc::kMax:
        fn = "max";
        break;
    }
    result.column_names.push_back(
        agg.func == AggregateFunc::kCount
            ? std::string(fn)
            : std::string(fn) + "(" + agg.column + ")");
  }

  std::vector<const Group*> ordered;
  ordered.reserve(groups.size());
  for (const auto& [key_text, group] : groups) ordered.push_back(&group);
  std::sort(ordered.begin(), ordered.end(),
            [](const Group* a, const Group* b) {
              for (size_t i = 0; i < a->key.size(); ++i) {
                int c = a->key[i].Compare(b->key[i]);
                if (c != 0) return c < 0;
              }
              return false;
            });

  for (const Group* group : ordered) {
    Row row = group->key;
    for (size_t a = 0; a < query.aggregates.size(); ++a) {
      const AggregateState& state = group->aggs[a];
      switch (query.aggregates[a].func) {
        case AggregateFunc::kCount:
          row.push_back(Value::Int(static_cast<int64_t>(state.count)));
          break;
        case AggregateFunc::kCountDistinct:
          row.push_back(
              Value::Int(static_cast<int64_t>(state.distinct.size())));
          break;
        case AggregateFunc::kSum:
          row.push_back(state.any_numeric ? Value::Real(state.sum)
                                          : Value::Null());
          break;
        case AggregateFunc::kAvg:
          row.push_back(state.count > 0
                            ? Value::Real(state.sum /
                                          static_cast<double>(state.count))
                            : Value::Null());
          break;
        case AggregateFunc::kMin:
          row.push_back(state.count > 0 ? state.min : Value::Null());
          break;
        case AggregateFunc::kMax:
          row.push_back(state.count > 0 ? state.max : Value::Null());
          break;
      }
    }
    result.rows.push_back(std::move(row));
  }
  return result;
}

}  // namespace reldb
}  // namespace hypre
