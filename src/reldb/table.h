// In-memory tables with optional auto-maintained secondary indexes.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "reldb/index.h"
#include "reldb/schema.h"

namespace hypre {
namespace reldb {

class MutationJournal;

/// \brief A heap of rows plus its schema and secondary indexes.
///
/// Rows are append-only in the heap; Delete() tombstones a row instead of
/// compacting, so RowId stays stable for the life of the table. Deleted rows
/// are unindexed immediately and skipped by the executor's scans, but their
/// payload is retained — the delta subsystem reconstructs pre-delete join
/// states from it (see mutation_journal.h). Tables owned by a Database
/// record every append/delete into the database's MutationJournal.
class Table {
 public:
  Table(std::string name, Schema schema)
      : name_(std::move(name)), schema_(std::move(schema)) {}

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  /// \brief Physical row count, tombstones included (the RowId range).
  size_t num_rows() const { return rows_.size(); }
  /// \brief Rows that have not been deleted.
  size_t num_live_rows() const { return rows_.size() - num_deleted_; }
  size_t num_deleted() const { return num_deleted_; }
  const Row& row(RowId id) const { return rows_[id]; }
  /// \brief All physical rows, tombstones included; pair with is_deleted()
  /// when the table may have seen deletes.
  const std::vector<Row>& rows() const { return rows_; }

  bool is_deleted(RowId id) const {
    return id < deleted_.size() && deleted_[id] != 0;
  }

  /// \brief Appends a row after checking arity and (non-NULL) types.
  Status Append(Row row);

  /// \brief Appends without validation; for bulk loads from trusted
  /// generators.
  RowId AppendUnchecked(Row row);

  /// \brief Tombstones a row: unindexes it and hides it from scans while
  /// keeping its payload addressable. Fails on out-of-range or
  /// already-deleted ids.
  Status Delete(RowId id);

  /// \brief Journal that receives this table's mutations (may be null for
  /// standalone tables). Set by Database::CreateTable.
  void set_journal(MutationJournal* journal) { journal_ = journal; }

  /// \brief Builds (or rebuilds) a hash index on `column_name`, indexing all
  /// current live rows; future appends/deletes keep it up to date.
  Status CreateHashIndex(const std::string& column_name);

  /// \brief Builds (or rebuilds) an ordered index on `column_name`.
  Status CreateOrderedIndex(const std::string& column_name);

  /// \brief Returns the hash index on `column_name` or nullptr.
  const HashIndex* GetHashIndex(const std::string& column_name) const;

  /// \brief Returns the ordered index on `column_name` or nullptr.
  const OrderedIndex* GetOrderedIndex(const std::string& column_name) const;

 private:
  void IndexRow(RowId id);

  std::string name_;
  Schema schema_;
  std::vector<Row> rows_;
  // Tombstone flags, parallel to rows_.
  std::vector<uint8_t> deleted_;
  size_t num_deleted_ = 0;
  MutationJournal* journal_ = nullptr;
  std::vector<std::unique_ptr<HashIndex>> hash_indexes_;
  std::vector<std::unique_ptr<OrderedIndex>> ordered_indexes_;
};

}  // namespace reldb
}  // namespace hypre
