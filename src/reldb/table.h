// In-memory tables with optional auto-maintained secondary indexes.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "reldb/index.h"
#include "reldb/schema.h"

namespace hypre {
namespace reldb {

class MutationJournal;

/// \brief A heap of rows plus its schema and secondary indexes.
///
/// Rows are append-only in the heap; Delete() tombstones a row instead of
/// compacting, so RowId stays stable for the life of the table. Deleted rows
/// are unindexed immediately and skipped by the executor's scans, but their
/// payload is retained — the delta subsystem reconstructs pre-delete join
/// states from it (see mutation_journal.h). Tables owned by a Database
/// record every append/delete into the database's MutationJournal.
class Table {
 public:
  Table(std::string name, Schema schema)
      : name_(std::move(name)), schema_(std::move(schema)) {}

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  /// \brief Physical row count, tombstones included (the RowId range).
  size_t num_rows() const { return rows_.size(); }
  /// \brief Rows that have not been deleted.
  size_t num_live_rows() const { return rows_.size() - num_deleted_; }
  size_t num_deleted() const { return num_deleted_; }
  const Row& row(RowId id) const { return rows_[id]; }
  /// \brief All physical rows, tombstones included; pair with is_deleted()
  /// when the table may have seen deletes.
  const std::vector<Row>& rows() const { return rows_; }

  bool is_deleted(RowId id) const {
    return id < deleted_.size() && deleted_[id] != 0;
  }

  /// \brief Appends a row after checking arity and (non-NULL) types.
  Status Append(Row row);

  /// \brief Appends without validation; for bulk loads from trusted
  /// generators.
  RowId AppendUnchecked(Row row);

  /// \brief Snapshot-restore hook: appends a physical row (possibly a
  /// tombstone) WITHOUT journaling it — the row is not a new mutation, it is
  /// state a snapshot already covered. Restored tombstones keep their
  /// payload addressable and stay invisible to scans/indexes, preserving
  /// the table's RowId space so journal replay addresses the same rows.
  /// Only valid on a table with no built secondary indexes yet (declare or
  /// create them after the restore pass).
  RowId RestoreRow(Row row, bool deleted);

  /// \brief Pre-sizes the row heap for a bulk restore of `num_rows` rows.
  void Reserve(size_t num_rows) {
    rows_.reserve(num_rows);
    deleted_.reserve(num_rows);
  }

  /// \brief Tombstones a row: unindexes it and hides it from scans while
  /// keeping its payload addressable. Fails on out-of-range or
  /// already-deleted ids.
  Status Delete(RowId id);

  /// \brief Journal that receives this table's mutations (may be null for
  /// standalone tables). Set by Database::CreateTable.
  void set_journal(MutationJournal* journal) { journal_ = journal; }

  /// \brief Builds (or rebuilds) a hash index on `column_name`, indexing all
  /// current live rows; future appends/deletes keep it up to date.
  Status CreateHashIndex(const std::string& column_name);

  /// \brief Builds (or rebuilds) an ordered index on `column_name`.
  Status CreateOrderedIndex(const std::string& column_name);

  /// \brief Declares a hash index on `column_name` without building it: the
  /// index materializes (over the live rows at that moment) on the first
  /// GetHashIndex() touch. The snapshot recovery path declares every
  /// persisted index this way, so a warm restart pays for an index when a
  /// query first needs it rather than up front. No-op if the column already
  /// carries a built or declared hash index.
  Status DeclareHashIndex(const std::string& column_name);

  /// \brief Declares an ordered index that materializes on first touch.
  Status DeclareOrderedIndex(const std::string& column_name);

  /// \brief Returns the hash index on `column_name` or nullptr.
  const HashIndex* GetHashIndex(const std::string& column_name) const;

  /// \brief Returns the ordered index on `column_name` or nullptr.
  const OrderedIndex* GetOrderedIndex(const std::string& column_name) const;

  /// \brief Column names carrying a hash index (built first, then declared
  /// ones), in creation order — the catalog metadata a snapshot persists so
  /// indexes are re-declared on load.
  std::vector<std::string> HashIndexColumns() const;
  /// \brief Column names carrying an ordered index, built then declared.
  std::vector<std::string> OrderedIndexColumns() const;

 private:
  void IndexRow(RowId id);
  const HashIndex* MaterializeHashIndex(size_t col) const;
  const OrderedIndex* MaterializeOrderedIndex(size_t col) const;

  std::string name_;
  Schema schema_;
  std::vector<Row> rows_;
  // Tombstone flags, parallel to rows_.
  std::vector<uint8_t> deleted_;
  size_t num_deleted_ = 0;
  MutationJournal* journal_ = nullptr;
  // The index vectors and pending lists are mutable so the const
  // Get*Index() accessors can materialize a declared index on first touch.
  // A Table is a single-client structure (no internal synchronization, like
  // the Session that serves it), so this is a cache fill, not a race.
  mutable std::vector<std::unique_ptr<HashIndex>> hash_indexes_;
  mutable std::vector<std::unique_ptr<OrderedIndex>> ordered_indexes_;
  // Declared-but-unbuilt index columns (see DeclareHashIndex).
  mutable std::vector<size_t> pending_hash_;
  mutable std::vector<size_t> pending_ordered_;
};

}  // namespace reldb
}  // namespace hypre
