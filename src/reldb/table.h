// In-memory tables with optional auto-maintained secondary indexes.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "reldb/index.h"
#include "reldb/schema.h"

namespace hypre {
namespace reldb {

/// \brief A heap of rows plus its schema and secondary indexes.
///
/// Rows are append-only (the workloads in this repo never delete), which
/// keeps RowId stable and index maintenance trivial.
class Table {
 public:
  Table(std::string name, Schema schema)
      : name_(std::move(name)), schema_(std::move(schema)) {}

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return rows_.size(); }
  const Row& row(RowId id) const { return rows_[id]; }
  const std::vector<Row>& rows() const { return rows_; }

  /// \brief Appends a row after checking arity and (non-NULL) types.
  Status Append(Row row);

  /// \brief Appends without validation; for bulk loads from trusted
  /// generators.
  RowId AppendUnchecked(Row row);

  /// \brief Builds (or rebuilds) a hash index on `column_name`, indexing all
  /// current rows; future appends keep it up to date.
  Status CreateHashIndex(const std::string& column_name);

  /// \brief Builds (or rebuilds) an ordered index on `column_name`.
  Status CreateOrderedIndex(const std::string& column_name);

  /// \brief Returns the hash index on `column_name` or nullptr.
  const HashIndex* GetHashIndex(const std::string& column_name) const;

  /// \brief Returns the ordered index on `column_name` or nullptr.
  const OrderedIndex* GetOrderedIndex(const std::string& column_name) const;

 private:
  void IndexRow(RowId id);

  std::string name_;
  Schema schema_;
  std::vector<Row> rows_;
  std::vector<std::unique_ptr<HashIndex>> hash_indexes_;
  std::vector<std::unique_ptr<OrderedIndex>> ordered_indexes_;
};

}  // namespace reldb
}  // namespace hypre
