// Catalog of named tables.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "reldb/table.h"

namespace hypre {
namespace reldb {

/// \brief A named collection of tables (the engine's catalog).
class Database {
 public:
  /// \brief Creates a table; fails if the name is taken.
  Result<Table*> CreateTable(const std::string& name, Schema schema);

  /// \brief Looks a table up by name (nullptr if absent).
  Table* GetTable(const std::string& name);
  const Table* GetTable(const std::string& name) const;

  /// \brief Like GetTable but returns a NotFound status.
  Result<const Table*> ResolveTable(const std::string& name) const;

  std::vector<std::string> TableNames() const;

 private:
  std::map<std::string, std::unique_ptr<Table>> tables_;
};

}  // namespace reldb
}  // namespace hypre
