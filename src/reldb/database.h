// Catalog of named tables.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "reldb/mutation_journal.h"
#include "reldb/table.h"

namespace hypre {
namespace reldb {

/// \brief A named collection of tables (the engine's catalog).
///
/// The database owns the MutationJournal its tables record into: every
/// append/delete on a catalog table lands in the journal, and delta
/// consumers (the probe engine's Refresh path) replay the suffix they have
/// not yet seen.
class Database {
 public:
  /// \brief Creates a table; fails if the name is taken. The table records
  /// its mutations into this database's journal.
  Result<Table*> CreateTable(const std::string& name, Schema schema);

  const MutationJournal& journal() const { return journal_; }
  MutationJournal* mutable_journal() { return &journal_; }

  /// \brief Looks a table up by name (nullptr if absent).
  Table* GetTable(const std::string& name);
  const Table* GetTable(const std::string& name) const;

  /// \brief Like GetTable but returns a NotFound status.
  Result<const Table*> ResolveTable(const std::string& name) const;

  std::vector<std::string> TableNames() const;

 private:
  std::map<std::string, std::unique_ptr<Table>> tables_;
  MutationJournal journal_;
};

}  // namespace reldb
}  // namespace hypre
