// Mutation journal: the ordered append/delete log the delta subsystem rides.
//
// Every table owned by a Database records its mutations (row appends and
// tombstone deletes) into the database's journal. Consumers — the probe
// engine's DeltaEngine, the durable storage layer's write-ahead log, any
// index or replica that must stay consistent under updates — subscribe by
// remembering the journal sequence number they last consumed and replaying
// the suffix: the half-open entry range [cursor, sequence()) is exactly one
// epoch's worth of changes for that consumer. Sequence numbers are dense and
// monotone, so two consumers with different cursors see consistent
// (prefix-ordered) histories of the same log.
//
// Storage is SEGMENTED: entries live in fixed-size segments so that
// TruncateTo() can drop whole segments once every consumer (and the durable
// snapshot) has advanced past them, bounding journal memory under sustained
// churn. Sequence numbers are NEVER reused by truncation — entry(seq)
// addresses the same mutation forever; only entries below start() become
// inaccessible. A journal restored from a snapshot begins numbering at the
// snapshot's sequence via SetStart(), so replayed write-ahead-log records
// line up with the sequences they carried when first recorded.
//
// The journal records row identities, not row payloads: deleted rows keep
// their data in the table (tombstones), so a consumer reconstructing the
// pre-delete state joins against the retained payloads with a visibility
// override (see Executor::ForEachMatchOfRow). The storage layer's WAL spill
// reads payloads the same way, which is why tombstone retention also makes
// every journaled append durable even after the row dies.
#pragma once

#include <cassert>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "reldb/index.h"

namespace hypre {
namespace reldb {

/// \brief One recorded base-table mutation.
struct Mutation {
  enum class Kind : uint8_t { kAppend, kDelete };
  Kind kind = Kind::kAppend;
  RowId row = 0;
  std::string table;
};

/// \brief Ordered log of table mutations with dense sequence numbers,
/// segmented in memory so checkpointed prefixes can be dropped.
class MutationJournal {
 public:
  /// Entries per in-memory segment; TruncateTo frees whole segments only.
  static constexpr uint64_t kSegmentEntries = 1024;

  /// \brief Sequence number one past the newest entry; entry `s` exists for
  /// every s in [start(), sequence()). A consumer's epoch is the slice
  /// between two snapshots of this counter.
  uint64_t sequence() const { return next_; }

  /// \brief Oldest retained sequence number. Entries below this were
  /// truncated after a snapshot covered them (or predate this journal — a
  /// restore from snapshot starts the numbering at the snapshot sequence).
  uint64_t start() const { return first_; }

  /// \brief Entries currently held in memory (sequence() - start()).
  uint64_t num_retained() const { return next_ - first_; }

  void RecordAppend(const std::string& table, RowId row) {
    Push({Mutation::Kind::kAppend, row, table});
    ++num_appends_;
  }
  void RecordDelete(const std::string& table, RowId row) {
    Push({Mutation::Kind::kDelete, row, table});
    ++num_deletes_;
  }

  /// \brief Entry `seq`; seq must be in [start(), sequence()).
  const Mutation& entry(uint64_t seq) const {
    assert(seq >= first_ && seq < next_);
    uint64_t off = seq - segments_.front().base;
    return segments_[off / kSegmentEntries].entries[off % kSegmentEntries];
  }

  /// \brief Replays entries [max(since, start()), sequence()) in order.
  /// A consumer whose cursor fell below start() missed truncated history —
  /// callers coordinating truncation (the storage layer) guarantee every
  /// consumer advanced past a prefix before dropping it.
  void ForEachSince(uint64_t since,
                    const std::function<void(const Mutation&)>& fn) const {
    for (uint64_t s = since < first_ ? first_ : since; s < next_; ++s) {
      fn(entry(s));
    }
  }

  /// \brief Drops whole segments wholly below `seq` (typically the sequence
  /// a durable snapshot captured). Safe only once every journal consumer's
  /// cursor is >= seq. Truncating an empty journal, or to a sequence that
  /// keeps every segment, is a no-op.
  void TruncateTo(uint64_t seq) {
    if (seq > next_) seq = next_;
    size_t drop = 0;
    while (drop < segments_.size() &&
           segments_[drop].base + segments_[drop].entries.size() <= seq) {
      ++drop;
    }
    if (drop == 0) return;
    segments_.erase(segments_.begin(), segments_.begin() + drop);
    first_ = segments_.empty() ? next_ : segments_.front().base;
  }

  /// \brief Starts the numbering at `seq`; only valid while the journal is
  /// empty (no entries ever recorded or all truncated with none since).
  /// Used when restoring a database from a snapshot taken at sequence `seq`,
  /// so replayed WAL records keep their original sequence numbers.
  void SetStart(uint64_t seq) {
    assert(segments_.empty() && first_ == next_);
    first_ = next_ = seq;
  }

  uint64_t num_appends() const { return num_appends_; }
  uint64_t num_deletes() const { return num_deletes_; }

 private:
  struct Segment {
    uint64_t base = 0;
    std::vector<Mutation> entries;
  };

  void Push(Mutation m) {
    if (segments_.empty() ||
        segments_.back().entries.size() == kSegmentEntries) {
      Segment seg;
      seg.base = next_;
      seg.entries.reserve(kSegmentEntries);
      segments_.push_back(std::move(seg));
    }
    segments_.back().entries.push_back(std::move(m));
    ++next_;
  }

  // Segment i's base is always segments_.front().base + i * kSegmentEntries
  // (every segment except the last is full), so entry() is O(1).
  std::vector<Segment> segments_;
  uint64_t first_ = 0;  // oldest retained sequence
  uint64_t next_ = 0;   // == sequence()
  uint64_t num_appends_ = 0;
  uint64_t num_deletes_ = 0;
};

}  // namespace reldb
}  // namespace hypre
