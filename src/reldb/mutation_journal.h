// Mutation journal: the ordered append/delete log the delta subsystem rides.
//
// Every table owned by a Database records its mutations (row appends and
// tombstone deletes) into the database's journal. Consumers — today the
// probe engine's DeltaEngine, tomorrow any index or replica that must stay
// consistent under updates — subscribe by remembering the journal sequence
// number they last consumed and replaying the suffix: the half-open entry
// range [cursor, sequence()) is exactly one epoch's worth of changes for
// that consumer. Sequence numbers are dense and monotone, so two consumers
// with different cursors see consistent (prefix-ordered) histories of the
// same log.
//
// The journal records row identities, not row payloads: deleted rows keep
// their data in the table (tombstones), so a consumer reconstructing the
// pre-delete state joins against the retained payloads with a visibility
// override (see Executor::ForEachMatchOfRow).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "reldb/index.h"

namespace hypre {
namespace reldb {

/// \brief One recorded base-table mutation.
struct Mutation {
  enum class Kind : uint8_t { kAppend, kDelete };
  Kind kind = Kind::kAppend;
  RowId row = 0;
  std::string table;
};

/// \brief Ordered log of table mutations with dense sequence numbers.
class MutationJournal {
 public:
  /// \brief Sequence number one past the newest entry; entry `s` exists for
  /// every s in [0, sequence()). A consumer's epoch is the slice between two
  /// snapshots of this counter.
  uint64_t sequence() const { return entries_.size(); }

  void RecordAppend(const std::string& table, RowId row) {
    entries_.push_back({Mutation::Kind::kAppend, row, table});
    ++num_appends_;
  }
  void RecordDelete(const std::string& table, RowId row) {
    entries_.push_back({Mutation::Kind::kDelete, row, table});
    ++num_deletes_;
  }

  const Mutation& entry(uint64_t seq) const { return entries_[seq]; }

  /// \brief Replays entries [since, sequence()) in order.
  void ForEachSince(uint64_t since,
                    const std::function<void(const Mutation&)>& fn) const {
    for (uint64_t s = since; s < entries_.size(); ++s) fn(entries_[s]);
  }

  uint64_t num_appends() const { return num_appends_; }
  uint64_t num_deletes() const { return num_deletes_; }

 private:
  std::vector<Mutation> entries_;
  uint64_t num_appends_ = 0;
  uint64_t num_deletes_ = 0;
};

}  // namespace reldb
}  // namespace hypre
