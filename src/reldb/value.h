// Typed scalar values for the embedded relational engine.
#pragma once

#include <cstdint>
#include <string>
#include <variant>

#include "common/status.h"

namespace hypre {
namespace reldb {

/// \brief Column/value type tags.
enum class ValueType { kNull = 0, kInt64, kDouble, kString };

const char* ValueTypeToString(ValueType type);

/// \brief A dynamically typed scalar: NULL, INT64, DOUBLE, or STRING.
///
/// Comparison follows SQL-ish semantics restricted to what the preference
/// predicates need: numerics compare across INT64/DOUBLE; strings compare
/// with strings; NULL is never equal to anything (including NULL) under
/// Equals(), but sorts first under Compare() so containers stay total.
class Value {
 public:
  Value() : rep_(std::monostate{}) {}
  explicit Value(int64_t v) : rep_(v) {}
  explicit Value(double v) : rep_(v) {}
  explicit Value(std::string v) : rep_(std::move(v)) {}
  explicit Value(const char* v) : rep_(std::string(v)) {}

  static Value Null() { return Value(); }
  static Value Int(int64_t v) { return Value(v); }
  static Value Real(double v) { return Value(v); }
  static Value Str(std::string v) { return Value(std::move(v)); }

  ValueType type() const;
  bool is_null() const { return type() == ValueType::kNull; }

  int64_t AsInt() const { return std::get<int64_t>(rep_); }
  double AsDouble() const { return std::get<double>(rep_); }
  const std::string& AsString() const { return std::get<std::string>(rep_); }

  /// \brief Numeric view: INT64 widened to double. Invalid on other types.
  double NumericValue() const;

  /// \brief True for numeric types (INT64 or DOUBLE).
  bool is_numeric() const {
    ValueType t = type();
    return t == ValueType::kInt64 || t == ValueType::kDouble;
  }

  /// \brief SQL equality (NULL = anything -> false).
  bool Equals(const Value& other) const;

  /// \brief Three-way comparison usable for ORDER BY and ordered indexes.
  /// NULL < numerics < strings; within numerics, numeric order; within
  /// strings, lexicographic order. Returns <0, 0, >0.
  int Compare(const Value& other) const;

  /// \brief Total-order hash consistent with Compare()==0 (numerics hashing
  /// by double value so Int(2) and Real(2.0) collide as required).
  size_t Hash() const;

  /// \brief SQL-literal-ish rendering ('quoted' strings, NULL).
  std::string ToString() const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }

 private:
  std::variant<std::monostate, int64_t, double, std::string> rep_;
};

/// \brief Hash functor for unordered containers keyed by Value.
struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

}  // namespace reldb
}  // namespace hypre
