// Predicate expression AST: the representation of SQL WHERE clauses.
//
// HYPRE stores every preference as a predicate string; the parser in
// src/sqlparse turns those strings into this AST, the HYPRE combination
// algorithms compose ASTs with AND/OR, and the executor evaluates them.
#pragma once

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "reldb/value.h"

namespace hypre {
namespace reldb {

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

enum class ExprKind {
  kColumnRef,
  kLiteral,
  kCompare,
  kBetween,
  kInList,
  kAnd,
  kOr,
  kNot,
};

enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };

const char* CompareOpToString(CompareOp op);

/// \brief Source of column values during evaluation; implemented by the
/// executor over (possibly joined) rows.
class RowAccessor {
 public:
  virtual ~RowAccessor() = default;
  /// \brief Value of `table`.`column` in the current row. `table` may be
  /// empty for unqualified references (resolved if unambiguous).
  virtual Result<Value> Get(const std::string& table,
                            const std::string& column) const = 0;
};

/// \brief Immutable predicate AST node.
class Expr {
 public:
  virtual ~Expr() = default;
  explicit Expr(ExprKind kind) : kind_(kind) {}

  ExprKind kind() const { return kind_; }

  /// \brief SQL rendering, parse-compatible with sqlparse.
  virtual std::string ToString() const = 0;

  /// \brief Adds every referenced table name (possibly "") to `out`.
  virtual void CollectTables(std::set<std::string>* out) const = 0;

 private:
  ExprKind kind_;
};

/// \brief Reference to `table`.`column` (table part may be empty).
class ColumnRefExpr : public Expr {
 public:
  ColumnRefExpr(std::string table, std::string column)
      : Expr(ExprKind::kColumnRef),
        table_(std::move(table)),
        column_(std::move(column)) {}

  const std::string& table() const { return table_; }
  const std::string& column() const { return column_; }

  /// \brief "table.column" or "column".
  std::string QualifiedName() const;

  std::string ToString() const override { return QualifiedName(); }
  void CollectTables(std::set<std::string>* out) const override {
    out->insert(table_);
  }

 private:
  std::string table_;
  std::string column_;
};

/// \brief Constant value.
class LiteralExpr : public Expr {
 public:
  explicit LiteralExpr(Value value)
      : Expr(ExprKind::kLiteral), value_(std::move(value)) {}

  const Value& value() const { return value_; }

  std::string ToString() const override { return value_.ToString(); }
  void CollectTables(std::set<std::string>*) const override {}

 private:
  Value value_;
};

/// \brief Binary comparison `lhs op rhs`.
class CompareExpr : public Expr {
 public:
  CompareExpr(CompareOp op, ExprPtr lhs, ExprPtr rhs)
      : Expr(ExprKind::kCompare),
        op_(op),
        lhs_(std::move(lhs)),
        rhs_(std::move(rhs)) {}

  CompareOp op() const { return op_; }
  const ExprPtr& lhs() const { return lhs_; }
  const ExprPtr& rhs() const { return rhs_; }

  std::string ToString() const override;
  void CollectTables(std::set<std::string>* out) const override {
    lhs_->CollectTables(out);
    rhs_->CollectTables(out);
  }

 private:
  CompareOp op_;
  ExprPtr lhs_;
  ExprPtr rhs_;
};

/// \brief `col BETWEEN lo AND hi` (inclusive both ends, as in SQL).
class BetweenExpr : public Expr {
 public:
  BetweenExpr(ExprPtr column, Value lo, Value hi)
      : Expr(ExprKind::kBetween),
        column_(std::move(column)),
        lo_(std::move(lo)),
        hi_(std::move(hi)) {}

  const ExprPtr& column() const { return column_; }
  const Value& lo() const { return lo_; }
  const Value& hi() const { return hi_; }

  std::string ToString() const override;
  void CollectTables(std::set<std::string>* out) const override {
    column_->CollectTables(out);
  }

 private:
  ExprPtr column_;
  Value lo_;
  Value hi_;
};

/// \brief `col IN (v1, v2, ...)`.
class InListExpr : public Expr {
 public:
  InListExpr(ExprPtr column, std::vector<Value> values)
      : Expr(ExprKind::kInList),
        column_(std::move(column)),
        values_(std::move(values)) {}

  const ExprPtr& column() const { return column_; }
  const std::vector<Value>& values() const { return values_; }

  std::string ToString() const override;
  void CollectTables(std::set<std::string>* out) const override {
    column_->CollectTables(out);
  }

 private:
  ExprPtr column_;
  std::vector<Value> values_;
};

/// \brief N-ary conjunction / disjunction.
class NaryExpr : public Expr {
 public:
  NaryExpr(ExprKind kind, std::vector<ExprPtr> children)
      : Expr(kind), children_(std::move(children)) {}

  const std::vector<ExprPtr>& children() const { return children_; }

  std::string ToString() const override;
  void CollectTables(std::set<std::string>* out) const override {
    for (const auto& c : children_) c->CollectTables(out);
  }

 private:
  std::vector<ExprPtr> children_;
};

/// \brief Logical negation.
class NotExpr : public Expr {
 public:
  explicit NotExpr(ExprPtr child)
      : Expr(ExprKind::kNot), child_(std::move(child)) {}

  const ExprPtr& child() const { return child_; }

  std::string ToString() const override {
    return "NOT (" + child_->ToString() + ")";
  }
  void CollectTables(std::set<std::string>* out) const override {
    child_->CollectTables(out);
  }

 private:
  ExprPtr child_;
};

// --- Factory helpers ------------------------------------------------------

ExprPtr Col(std::string table, std::string column);
ExprPtr Col(std::string column);
ExprPtr Lit(Value value);
ExprPtr Cmp(CompareOp op, ExprPtr lhs, ExprPtr rhs);
ExprPtr Eq(ExprPtr lhs, ExprPtr rhs);
ExprPtr Between(ExprPtr column, Value lo, Value hi);
ExprPtr In(ExprPtr column, std::vector<Value> values);
ExprPtr MakeAnd(std::vector<ExprPtr> children);
ExprPtr MakeOr(std::vector<ExprPtr> children);
ExprPtr MakeAnd(ExprPtr a, ExprPtr b);
ExprPtr MakeOr(ExprPtr a, ExprPtr b);
ExprPtr MakeNot(ExprPtr child);

/// \brief Evaluates a predicate against a row. Comparisons involving NULL
/// evaluate to false (SQL's unknown treated as not-matching).
Result<bool> Evaluate(const Expr& expr, const RowAccessor& row);

/// \brief Flattens nested ANDs into top-level conjuncts (a single non-AND
/// expression yields itself).
void CollectConjuncts(const ExprPtr& expr, std::vector<ExprPtr>* out);

/// \brief Structural equality of two expression trees.
bool ExprEquals(const Expr& a, const Expr& b);

}  // namespace reldb
}  // namespace hypre
