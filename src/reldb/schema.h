// Relation schemas for the embedded engine.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "reldb/value.h"

namespace hypre {
namespace reldb {

/// \brief A named, typed column.
struct Column {
  std::string name;
  ValueType type;
};

/// \brief Ordered list of columns with O(1) name lookup.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns);

  size_t num_columns() const { return columns_.size(); }
  const Column& column(size_t i) const { return columns_[i]; }
  const std::vector<Column>& columns() const { return columns_; }

  /// \brief Index of the column named `name`, or -1 if absent.
  int FindColumn(const std::string& name) const;

  /// \brief Like FindColumn but returns a Status error naming the column.
  Result<size_t> ResolveColumn(const std::string& name) const;

  std::string ToString() const;

 private:
  std::vector<Column> columns_;
  std::unordered_map<std::string, size_t> by_name_;
};

/// \brief A tuple; values are positionally aligned with a Schema.
using Row = std::vector<Value>;

}  // namespace reldb
}  // namespace hypre
