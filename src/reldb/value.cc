#include "reldb/value.h"

#include <cmath>
#include <functional>

#include "common/string_util.h"

namespace hypre {
namespace reldb {

const char* ValueTypeToString(ValueType type) {
  switch (type) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt64:
      return "INT64";
    case ValueType::kDouble:
      return "DOUBLE";
    case ValueType::kString:
      return "STRING";
  }
  return "?";
}

ValueType Value::type() const {
  switch (rep_.index()) {
    case 0:
      return ValueType::kNull;
    case 1:
      return ValueType::kInt64;
    case 2:
      return ValueType::kDouble;
    default:
      return ValueType::kString;
  }
}

double Value::NumericValue() const {
  if (type() == ValueType::kInt64) return static_cast<double>(AsInt());
  return AsDouble();
}

bool Value::Equals(const Value& other) const {
  if (is_null() || other.is_null()) return false;
  return Compare(other) == 0;
}

int Value::Compare(const Value& other) const {
  // Rank groups: NULL(0) < numeric(1) < string(2).
  auto rank = [](const Value& v) {
    switch (v.type()) {
      case ValueType::kNull:
        return 0;
      case ValueType::kInt64:
      case ValueType::kDouble:
        return 1;
      case ValueType::kString:
        return 2;
    }
    return 3;
  };
  int ra = rank(*this);
  int rb = rank(other);
  if (ra != rb) return ra < rb ? -1 : 1;
  if (ra == 0) return 0;  // both NULL
  if (ra == 1) {
    // Exact int-int comparison when possible to avoid precision loss.
    if (type() == ValueType::kInt64 && other.type() == ValueType::kInt64) {
      int64_t a = AsInt();
      int64_t b = other.AsInt();
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    double a = NumericValue();
    double b = other.NumericValue();
    return a < b ? -1 : (a > b ? 1 : 0);
  }
  return AsString().compare(other.AsString());
}

size_t Value::Hash() const {
  switch (type()) {
    case ValueType::kNull:
      return 0x5bd1e995;
    case ValueType::kInt64:
    case ValueType::kDouble: {
      double d = NumericValue();
      if (d == 0.0) d = 0.0;  // normalize -0.0
      // Integers representable exactly as doubles hash identically whether
      // stored as INT64 or DOUBLE.
      return std::hash<double>()(d);
    }
    case ValueType::kString:
      return std::hash<std::string>()(AsString());
  }
  return 0;
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt64:
      return std::to_string(AsInt());
    case ValueType::kDouble: {
      std::string s = StringFormat("%g", AsDouble());
      return s;
    }
    case ValueType::kString:
      return "'" + AsString() + "'";
  }
  return "?";
}

}  // namespace reldb
}  // namespace hypre
