#include "reldb/database.h"

namespace hypre {
namespace reldb {

Result<Table*> Database::CreateTable(const std::string& name, Schema schema) {
  if (tables_.count(name) > 0) {
    return Status::AlreadyExists("table '" + name + "' already exists");
  }
  auto table = std::make_unique<Table>(name, std::move(schema));
  table->set_journal(&journal_);
  Table* ptr = table.get();
  tables_.emplace(name, std::move(table));
  return ptr;
}

Table* Database::GetTable(const std::string& name) {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

const Table* Database::GetTable(const std::string& name) const {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

Result<const Table*> Database::ResolveTable(const std::string& name) const {
  const Table* t = GetTable(name);
  if (t == nullptr) return Status::NotFound("no table named '" + name + "'");
  return t;
}

std::vector<std::string> Database::TableNames() const {
  std::vector<std::string> out;
  out.reserve(tables_.size());
  for (const auto& [name, table] : tables_) out.push_back(name);
  return out;
}

}  // namespace reldb
}  // namespace hypre
