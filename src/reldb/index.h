// Secondary indexes: hash (point/IN lookups) and ordered (range lookups).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "reldb/value.h"

namespace hypre {
namespace reldb {

/// \brief Row identifier within a table (position in the row vector).
using RowId = uint64_t;

/// \brief Equality index: value -> sorted list of row ids.
class HashIndex {
 public:
  explicit HashIndex(size_t column) : column_(column) {}

  size_t column() const { return column_; }

  void Insert(const Value& key, RowId row) { map_[key].push_back(row); }

  /// \brief Removes one (key, row) posting; no-op if absent. Keeps the
  /// posting list sorted. The table's tombstone delete path calls this so
  /// index lookups never surface deleted rows.
  void Erase(const Value& key, RowId row);

  /// \brief Rows whose indexed column equals `key` (empty if none). NULL keys
  /// never match, mirroring SQL equality.
  const std::vector<RowId>& Lookup(const Value& key) const;

  size_t num_distinct_keys() const { return map_.size(); }

 private:
  size_t column_;
  std::unordered_map<Value, std::vector<RowId>, ValueHash> map_;
  static const std::vector<RowId> kEmpty;
};

/// \brief Ordered index: supports range scans [lo, hi] on the Value total
/// order (used for BETWEEN and </> predicates).
class OrderedIndex {
 public:
  explicit OrderedIndex(size_t column) : column_(column) {}

  size_t column() const { return column_; }

  void Insert(const Value& key, RowId row) { map_.emplace(key, row); }

  /// \brief Removes one (key, row) posting; no-op if absent.
  void Erase(const Value& key, RowId row);

  /// \brief Row ids with lo <= key <= hi (bounds optional via null Values
  /// meaning unbounded on that side; inclusive flags per side).
  std::vector<RowId> Range(const Value& lo, bool lo_inclusive, const Value& hi,
                           bool hi_inclusive) const;

  size_t size() const { return map_.size(); }

 private:
  size_t column_;
  std::multimap<Value, RowId> map_;
};

}  // namespace reldb
}  // namespace hypre
