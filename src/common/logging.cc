#include "common/logging.h"

#include <cstdio>

namespace hypre {

LogLevel Logger::level_ = LogLevel::kWarning;

void Logger::SetLevel(LogLevel level) { level_ = level; }

LogLevel Logger::GetLevel() { return level_; }

void Logger::Log(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(level_)) return;
  const char* tag = "INFO";
  switch (level) {
    case LogLevel::kDebug:
      tag = "DEBUG";
      break;
    case LogLevel::kInfo:
      tag = "INFO";
      break;
    case LogLevel::kWarning:
      tag = "WARN";
      break;
    case LogLevel::kError:
      tag = "ERROR";
      break;
  }
  std::fprintf(stderr, "[%s] %s\n", tag, message.c_str());
}

}  // namespace hypre
