// Deterministic random number generation and skewed samplers used by the
// synthetic-workload generator and the Bias-Random-Selection algorithm.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace hypre {

/// \brief xoshiro256** PRNG: fast, high quality, fully deterministic given a
/// seed, so every experiment in the repo is reproducible.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// \brief Uniform 64-bit value.
  uint64_t Next();

  /// \brief Uniform value in [0, bound). `bound` must be > 0.
  uint64_t NextBounded(uint64_t bound);

  /// \brief Uniform double in [0, 1).
  double NextDouble();

  /// \brief Uniform double in [lo, hi).
  double NextDouble(double lo, double hi);

  /// \brief Bernoulli trial with success probability p (clamped to [0,1]).
  bool NextBernoulli(double p);

  /// \brief Uniform integer in [lo, hi] inclusive.
  int64_t NextInt(int64_t lo, int64_t hi);

 private:
  uint64_t state_[4];
};

/// \brief Zipf(s, n) sampler over ranks {0, ..., n-1} using the inverse-CDF
/// method over a precomputed cumulative table.
///
/// Venue popularity, author productivity and citation fan-in in the DBLP
/// workload are all long-tailed; Zipf reproduces that shape.
class ZipfSampler {
 public:
  /// \param n number of distinct items (must be >= 1)
  /// \param s skew exponent (s = 0 is uniform; typical 0.8-1.2)
  ZipfSampler(size_t n, double s);

  /// \brief Samples a rank in [0, n); rank 0 is most popular.
  size_t Sample(Rng* rng) const;

  size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

/// \brief Fisher-Yates shuffle.
template <typename T>
void Shuffle(std::vector<T>* v, Rng* rng) {
  for (size_t i = v->size(); i > 1; --i) {
    size_t j = rng->NextBounded(i);
    std::swap((*v)[i - 1], (*v)[j]);
  }
}

}  // namespace hypre
