// Small string helpers shared across modules.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace hypre {

/// \brief Removes leading and trailing ASCII whitespace.
std::string_view TrimView(std::string_view s);
std::string Trim(std::string_view s);

/// \brief Lower-cases ASCII characters.
std::string ToLower(std::string_view s);

/// \brief Splits on a single character; empty fields are kept.
std::vector<std::string> Split(std::string_view s, char sep);

/// \brief Joins with a separator.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep);

/// \brief True if `s` starts with `prefix` (case sensitive).
bool StartsWith(std::string_view s, std::string_view prefix);

/// \brief Case-insensitive ASCII equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// \brief printf-style formatting into a std::string.
std::string StringFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace hypre
