// Status and Result<T>: lightweight, exception-free error propagation in the
// style of Apache Arrow / RocksDB.
#pragma once

#include <optional>
#include <string>
#include <utility>

namespace hypre {

/// \brief Machine-readable category of an error.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kParseError,
  kConflict,
  kNotImplemented,
  kInternal,
  /// Transient overload: the request was shed (queue full, deadline
  /// expired, shutting down) and may succeed if retried later. The HTTP
  /// layer maps this to 429/503 with a Retry-After hint.
  kUnavailable,
};

/// \brief Returns a human-readable name for a status code.
const char* StatusCodeToString(StatusCode code);

/// \brief Outcome of an operation: either OK or a code plus message.
///
/// Functions that can fail return `Status` (no payload) or `Result<T>`
/// (payload or error). Statuses are cheap to copy in the OK case.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status Conflict(std::string msg) {
    return Status(StatusCode::kConflict, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// \brief "OK" or "<Code>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// \brief Either a value of type T or an error Status.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT implicit
  Result(Status status) : status_(std::move(status)) {}  // NOLINT implicit

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// \brief Access the value; must only be called when ok().
  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return std::move(*value_); }

  /// \brief Move the value out; must only be called when ok().
  T TakeValue() { return std::move(*value_); }

  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace hypre

/// \brief Propagates a non-OK Status from the current function.
#define HYPRE_RETURN_NOT_OK(expr)          \
  do {                                     \
    ::hypre::Status _st = (expr);          \
    if (!_st.ok()) return _st;             \
  } while (0)

/// \brief Assigns the value of a Result to `lhs`, or propagates its error.
#define HYPRE_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).TakeValue();

#define HYPRE_ASSIGN_OR_RETURN_CONCAT(a, b) a##b
#define HYPRE_ASSIGN_OR_RETURN_NAME(a, b) HYPRE_ASSIGN_OR_RETURN_CONCAT(a, b)

#define HYPRE_ASSIGN_OR_RETURN(lhs, rexpr)                                   \
  HYPRE_ASSIGN_OR_RETURN_IMPL(                                               \
      HYPRE_ASSIGN_OR_RETURN_NAME(_result_tmp_, __COUNTER__), lhs, rexpr)
