// Minimal leveled logging to stderr, controllable at runtime.
#pragma once

#include <sstream>
#include <string>

namespace hypre {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// \brief Process-wide log configuration.
class Logger {
 public:
  /// \brief Sets the minimum level that is emitted. Defaults to kWarning so
  /// library code is quiet in tests and benchmarks.
  static void SetLevel(LogLevel level);
  static LogLevel GetLevel();

  /// \brief Emits a single log line if `level` is enabled.
  static void Log(LogLevel level, const std::string& message);

 private:
  static LogLevel level_;
};

namespace internal {

/// \brief Stream-style log statement helper; emits on destruction.
class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { Logger::Log(level_, stream_.str()); }

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace hypre

#define HYPRE_LOG_DEBUG ::hypre::internal::LogMessage(::hypre::LogLevel::kDebug)
#define HYPRE_LOG_INFO ::hypre::internal::LogMessage(::hypre::LogLevel::kInfo)
#define HYPRE_LOG_WARN \
  ::hypre::internal::LogMessage(::hypre::LogLevel::kWarning)
#define HYPRE_LOG_ERROR ::hypre::internal::LogMessage(::hypre::LogLevel::kError)
