// Hash combination helper (boost::hash_combine style).
#pragma once

#include <cstddef>
#include <functional>

namespace hypre {

/// \brief Mixes `value`'s hash into `seed`.
template <typename T>
void HashCombine(size_t* seed, const T& value) {
  std::hash<T> hasher;
  *seed ^= hasher(value) + 0x9E3779B97F4A7C15ULL + (*seed << 6) + (*seed >> 2);
}

}  // namespace hypre
