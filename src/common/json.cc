#include "common/json.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/string_util.h"

namespace hypre {

Json Json::Bool(bool v) {
  Json j;
  j.kind_ = Kind::kBool;
  j.bool_ = v;
  return j;
}

Json Json::Int(int64_t v) {
  Json j;
  j.kind_ = Kind::kInt;
  j.int_ = v;
  return j;
}

Json Json::Double(double v) {
  Json j;
  j.kind_ = Kind::kDouble;
  j.double_ = v;
  return j;
}

Json Json::Str(std::string v) {
  Json j;
  j.kind_ = Kind::kString;
  j.string_ = std::move(v);
  return j;
}

Json Json::Array() {
  Json j;
  j.kind_ = Kind::kArray;
  return j;
}

Json Json::Object() {
  Json j;
  j.kind_ = Kind::kObject;
  return j;
}

bool Json::Has(const std::string& key) const { return Find(key) != nullptr; }

const Json* Json::Find(const std::string& key) const {
  for (const auto& kv : object_) {
    if (kv.first == key) return &kv.second;
  }
  return nullptr;
}

void Json::Set(const std::string& key, Json v) {
  for (auto& kv : object_) {
    if (kv.first == key) {
      kv.second = std::move(v);
      return;
    }
  }
  object_.emplace_back(key, std::move(v));
}

Status Json::WrongKind(const std::string& key, const char* want,
                       const std::string& context) const {
  const Json* v = Find(key);
  // ParseError, not Internal: a missing or mistyped key is a defect in the
  // DOCUMENT (malformed catalog, malformed request body), which the HTTP
  // layer maps to 400 — the client's fault, not the server's.
  if (v == nullptr) {
    return Status::ParseError(StringFormat("%s: missing required key '%s'",
                                           context.c_str(), key.c_str()));
  }
  return Status::ParseError(StringFormat("%s: key '%s' is not %s",
                                         context.c_str(), key.c_str(), want));
}

Result<int64_t> Json::GetInt(const std::string& key,
                             const std::string& context) const {
  const Json* v = Find(key);
  if (v == nullptr || v->kind_ != Kind::kInt) {
    return WrongKind(key, "an integer", context);
  }
  return v->int_;
}

Result<std::string> Json::GetString(const std::string& key,
                                    const std::string& context) const {
  const Json* v = Find(key);
  if (v == nullptr || v->kind_ != Kind::kString) {
    return WrongKind(key, "a string", context);
  }
  return v->string_;
}

Result<const Json*> Json::GetArray(const std::string& key,
                                   const std::string& context) const {
  const Json* v = Find(key);
  if (v == nullptr || v->kind_ != Kind::kArray) {
    return WrongKind(key, "an array", context);
  }
  return v;
}

Result<const Json*> Json::GetObject(const std::string& key,
                                    const std::string& context) const {
  const Json* v = Find(key);
  if (v == nullptr || v->kind_ != Kind::kObject) {
    return WrongKind(key, "an object", context);
  }
  return v;
}

// --- Serialization -----------------------------------------------------------

namespace {

void EscapeInto(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\r':
        out->append("\\r");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

}  // namespace

std::string Json::Dump() const {
  std::string out;
  switch (kind_) {
    case Kind::kNull:
      out = "null";
      break;
    case Kind::kBool:
      out = bool_ ? "true" : "false";
      break;
    case Kind::kInt:
      out = std::to_string(int_);
      break;
    case Kind::kDouble: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.17g", double_);
      out = buf;
      break;
    }
    case Kind::kString:
      EscapeInto(string_, &out);
      break;
    case Kind::kArray: {
      out.push_back('[');
      for (size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) out.push_back(',');
        out.append(array_[i].Dump());
      }
      out.push_back(']');
      break;
    }
    case Kind::kObject: {
      out.push_back('{');
      bool first = true;
      for (const auto& kv : object_) {
        if (!first) out.push_back(',');
        first = false;
        EscapeInto(kv.first, &out);
        out.push_back(':');
        out.append(kv.second.Dump());
      }
      out.push_back('}');
      break;
    }
  }
  return out;
}

// --- Parsing -----------------------------------------------------------------

namespace {

class JsonParser {
 public:
  JsonParser(const std::string& text, const std::string& context)
      : text_(text), context_(context) {}

  Result<Json> ParseDocument() {
    HYPRE_ASSIGN_OR_RETURN(Json value, ParseValue(0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing garbage after JSON document");
    }
    return value;
  }

 private:
  static constexpr int kMaxDepth = 64;

  Status Error(const std::string& what) const {
    return Status::ParseError(StringFormat("%s: %s at byte %zu",
                                           context_.c_str(), what.c_str(),
                                           pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(const char* lit) {
    size_t n = std::strlen(lit);
    if (text_.compare(pos_, n, lit) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }

  Result<Json> ParseValue(int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    char c = text_[pos_];
    if (c == '{') return ParseObject(depth);
    if (c == '[') return ParseArray(depth);
    if (c == '"') {
      HYPRE_ASSIGN_OR_RETURN(std::string s, ParseString());
      return Json::Str(std::move(s));
    }
    if (ConsumeLiteral("true")) return Json::Bool(true);
    if (ConsumeLiteral("false")) return Json::Bool(false);
    if (ConsumeLiteral("null")) return Json::Null();
    if (c == '-' || (c >= '0' && c <= '9')) return ParseNumber();
    return Error(StringFormat("unexpected character '%c'", c));
  }

  Result<Json> ParseObject(int depth) {
    ++pos_;  // '{'
    Json obj = Json::Object();
    SkipWhitespace();
    if (Consume('}')) return obj;
    for (;;) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key string");
      }
      HYPRE_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' after object key");
      HYPRE_ASSIGN_OR_RETURN(Json value, ParseValue(depth + 1));
      obj.Set(key, std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) return obj;
      return Error("expected ',' or '}' in object");
    }
  }

  Result<Json> ParseArray(int depth) {
    ++pos_;  // '['
    Json arr = Json::Array();
    SkipWhitespace();
    if (Consume(']')) return arr;
    for (;;) {
      HYPRE_ASSIGN_OR_RETURN(Json value, ParseValue(depth + 1));
      arr.Append(std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) return arr;
      return Error("expected ',' or ']' in array");
    }
  }

  Result<std::string> ParseString() {
    ++pos_;  // '"'
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        char esc = text_[pos_++];
        switch (esc) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else return Error("invalid \\u escape");
            }
            // The writer only emits \u for control characters; decode the
            // BMP subset as UTF-8 for robustness.
            if (code < 0x80) {
              out.push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out.push_back(static_cast<char>(0xC0 | (code >> 6)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out.push_back(static_cast<char>(0xE0 | (code >> 12)));
              out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default:
            return Error(StringFormat("invalid escape '\\%c'", esc));
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        // RFC 8259: control characters must be escaped. The encoder always
        // escapes them, so a raw control byte is either corruption or a
        // hostile client.
        return Error("unescaped control character in string");
      } else {
        out.push_back(c);
      }
    }
    return Error("unterminated string");
  }

  Result<Json> ParseNumber() {
    size_t start = pos_;
    if (Consume('-')) {}
    size_t digits_start = pos_;
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      ++pos_;
    }
    if (pos_ == digits_start) return Error("expected digits in number");
    // JSON forbids leading zeros ("01"); accepting them would let two
    // different byte sequences decode to the same catalog, weakening the
    // "corruption is detected" story.
    if (text_[digits_start] == '0' && pos_ - digits_start > 1) {
      return Error("leading zero in number");
    }
    // Fraction and exponent follow the RFC 8259 grammar exactly: '.' and
    // 'e'/'E' each require at least one digit after them ("1." and "1e+"
    // are malformed, not shorthand).
    bool is_double = false;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      is_double = true;
      ++pos_;
      size_t frac_start = pos_;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
      if (pos_ == frac_start) return Error("expected digits after '.'");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      is_double = true;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      size_t exp_start = pos_;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
      if (pos_ == exp_start) return Error("expected digits in exponent");
    }
    std::string token = text_.substr(start, pos_ - start);
    if (token.empty() || token == "-") return Error("malformed number");
    errno = 0;
    char* end = nullptr;
    if (is_double) {
      double d = std::strtod(token.c_str(), &end);
      if (end != token.c_str() + token.size() || errno == ERANGE) {
        return Error("malformed number '" + token + "'");
      }
      return Json::Double(d);
    }
    long long v = std::strtoll(token.c_str(), &end, 10);
    if (end != token.c_str() + token.size() || errno == ERANGE) {
      return Error("malformed integer '" + token + "'");
    }
    return Json::Int(static_cast<int64_t>(v));
  }

  const std::string& text_;
  const std::string& context_;
  size_t pos_ = 0;
};

}  // namespace

Result<Json> Json::Parse(const std::string& text, const std::string& context) {
  return JsonParser(text, context).ParseDocument();
}

}  // namespace hypre
