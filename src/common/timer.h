// Wall-clock timing helper for the benchmark harnesses.
#pragma once

#include <chrono>

namespace hypre {

/// \brief Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() { Restart(); }

  void Restart() { start_ = Clock::now(); }

  /// \brief Seconds elapsed since construction or last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// \brief Milliseconds elapsed since construction or last Restart().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace hypre
