// Minimal strict JSON DOM shared by the storage catalog and the HTTP
// serving layer.
//
// Born as the snapshot's catalog-metadata codec (small, human-debuggable —
// `strings <snapshot>` shows what a snapshot contains), promoted to
// src/common once the REST front end needed the same parser/encoder for
// request and response bodies: one implementation means the server and the
// snapshot catalog agree on what "valid JSON" is. It is deliberately tiny:
// objects, arrays, strings, bools, null, and numbers. Integers are kept as
// int64 exactly (no double round-trip), which the snapshot format relies on
// for epochs and journal sequence numbers and the API relies on for row
// ids. Parsing is strict and fail-closed: trailing garbage, leading zeros,
// bad escapes, and over-deep nesting are all errors with a byte offset —
// the same corruption-is-detected posture the storage layer demands, which
// doubles as malformed-input robustness at the network edge (see
// tests/test_json.cc).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"

namespace hypre {

/// \brief A JSON value. Ints and doubles are distinct kinds so 64-bit
/// sequence numbers survive a round-trip exactly.
class Json {
 public:
  enum class Kind { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  Json() : kind_(Kind::kNull) {}
  static Json Null() { return Json(); }
  static Json Bool(bool v);
  static Json Int(int64_t v);
  static Json Double(double v);
  static Json Str(std::string v);
  static Json Array();
  static Json Object();

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }

  bool AsBool() const { return bool_; }
  int64_t AsInt() const { return int_; }
  double AsDouble() const {
    return kind_ == Kind::kInt ? static_cast<double>(int_) : double_;
  }
  const std::string& AsString() const { return string_; }

  // Array access.
  size_t size() const { return array_.size(); }
  const Json& at(size_t i) const { return array_[i]; }
  void Append(Json v) { array_.push_back(std::move(v)); }

  // Object access. Insertion order is preserved for serialization so the
  // written bytes are deterministic.
  bool Has(const std::string& key) const;
  const Json* Find(const std::string& key) const;
  void Set(const std::string& key, Json v);

  /// \brief Typed lookups with fail-closed errors carrying `context`.
  Result<int64_t> GetInt(const std::string& key,
                         const std::string& context) const;
  Result<std::string> GetString(const std::string& key,
                                const std::string& context) const;
  Result<const Json*> GetArray(const std::string& key,
                               const std::string& context) const;
  Result<const Json*> GetObject(const std::string& key,
                                const std::string& context) const;

  /// \brief Compact serialization (no insignificant whitespace).
  std::string Dump() const;

  /// \brief Parses a complete JSON document; trailing garbage is an error.
  /// Errors carry `context` and the byte offset of the failure.
  static Result<Json> Parse(const std::string& text,
                            const std::string& context);

 private:
  Status WrongKind(const std::string& key, const char* want,
                   const std::string& context) const;

  Kind kind_;
  bool bool_ = false;
  int64_t int_ = 0;
  double double_ = 0;
  std::string string_;
  std::vector<Json> array_;
  std::vector<std::pair<std::string, Json>> object_;
};

}  // namespace hypre
