#include "common/random.h"

#include <algorithm>
#include <cmath>

namespace hypre {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  // Seed the four xoshiro words from SplitMix64 as recommended by the
  // xoshiro authors; guarantees a non-zero state.
  uint64_t sm = seed;
  for (auto& word : state_) word = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  // Rejection sampling to avoid modulo bias.
  uint64_t threshold = (0ULL - bound) % bound;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::NextDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

bool Rng::NextBernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  if (hi <= lo) return lo;
  return lo + static_cast<int64_t>(
                  NextBounded(static_cast<uint64_t>(hi - lo + 1)));
}

ZipfSampler::ZipfSampler(size_t n, double s) {
  if (n == 0) n = 1;
  cdf_.resize(n);
  double acc = 0.0;
  for (size_t i = 0; i < n; ++i) {
    acc += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[i] = acc;
  }
  for (auto& c : cdf_) c /= acc;
}

size_t ZipfSampler::Sample(Rng* rng) const {
  double u = rng->NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return cdf_.size() - 1;
  return static_cast<size_t>(it - cdf_.begin());
}

}  // namespace hypre
