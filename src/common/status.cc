#include "common/status.h"

namespace hypre {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kConflict:
      return "Conflict";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace hypre
